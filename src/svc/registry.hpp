// Instance registry: maps string election keys onto leader_elect
// instances.
//
// The service multiplexes many logical elections (one per key) over one
// node pool. Each key is owned by a shard (lock-striped: hash(key) mod
// shard_count); the shard lazily creates per-key state the first time the
// key is touched and hands out the key's *current* (election_id, epoch)
// pair. Releasing leadership bumps the epoch and allocates a fresh
// election_id, so the next acquirers contend in a brand-new Figure-6
// instance — repeated test-and-set built from one-shot instances.
//
// Ownership is lease-based: claim_win stamps a deadline (now + TTL),
// renew() pushes it out, and sweep_expired() force-releases holders whose
// deadline has passed by bumping the epoch. The epoch doubles as a
// fencing token — a crashed-and-resurrected holder ("zombie") presenting
// its old epoch to release()/renew() is rejected with `stale_epoch`
// instead of corrupting the new holder's state.
//
// The epoch is also what keeps the service's two granting paths apart.
// An epoch can be granted EITHER by the contention-adaptive fast path
// (begin_adaptive_attempt: a CAS that skips the distributed protocol
// entirely) OR by a distributed election (arm_protocol then claim_win);
// the per-key mode recorded under the shard lock makes the two mutually
// exclusive per epoch, so they can never both grant the same epoch:
//
//   * the fast-path CAS succeeds only while the epoch is current,
//     unheld, and not armed for a protocol;
//   * arm_protocol succeeds only while the epoch is current and unheld,
//     and permanently (for that epoch) disables the fast path;
//   * claim_win grants the epoch to the first protocol survivor and
//     refuses everyone after (and any zombie of a stale epoch).
//
// Every state *mutation* — both grant paths, releases, renewals, the
// sweeper, disconnect reclaim, admin force-release — funnels through one
// deterministic executor: the call path decides (who wins, what
// expires), builds a cmd::command describing the decision, and
// apply_command_locked executes it. The same executor serves apply() /
// replay(), so a recorded command stream folded into a fresh registry
// reconstructs the same epochs, holders, modes, and (logical) lease
// deadlines — see snapshot()/restore() and src/cmd/. Non-mutating
// observations (attempt counters, arm_protocol's mode latch) stay
// outside the stream; snapshots exclude them.
//
// Each begin_attempt() is counted per epoch; the count (plus the final
// count of the previous epoch) is the contention estimate the adaptive
// strategy steers by.
//
// Election ids are drawn from a global 64-bit atomic counter starting
// high above the ids examples and tests hand-pick, so registry-managed
// instances never collide with manually created ones on the same pool.
// The replicated-variable namespace (var_id.instance) is 32-bit; rather
// than silently wrapping and aliasing long-decided instances' variables,
// allocation fails fast (ELECT_CHECK) when the counter reaches
// instance_id_limit — 64K ids *before* the uint32 space ends, so the
// abort happens well clear of any aliasing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cmd/command.hpp"
#include "election/vars.hpp"

namespace elect::svc {

/// The (instance, epoch) pair a key currently resolves to.
struct instance_entry {
  election::election_id instance{0};
  std::uint64_t epoch = 0;
};

/// What one acquire attempt sees when it registers (begin_attempt).
struct attempt_info {
  instance_entry entry;
  /// Attempts registered in the entry's epoch so far, including this
  /// one (1 means "I am the only acquirer observed this epoch").
  std::uint64_t attempts_this_epoch = 0;
  /// Final attempt count of the key's previous epoch (0 for epoch 0).
  /// Together with attempts_this_epoch this is the contention estimate:
  /// a key is *uncontended* when both are <= 1.
  std::uint64_t last_epoch_attempts = 0;
};

/// One leader transition on a key, as seen by the registry. The watch
/// layer (svc/watch.hpp, api::client::watch) is built on these; each is
/// a rendering of the command (cmd::command_kind) that caused it.
enum class transition : std::uint8_t {
  /// An epoch was granted — by either grant path (protocol win or
  /// adaptive fast claim). `epoch` is the granted epoch, `session` the
  /// new leader.
  elected = 0,
  /// The holder gave the key up voluntarily (fenced/unfenced release,
  /// release_all — including the network edge's disconnect-on-close
  /// reclaim, which is how a remote crash surfaces). `epoch` is the
  /// epoch that ended, `session` its last holder.
  released = 1,
  /// The sweeper force-released an expired lease (a crashed or wedged
  /// holder timed out). Same field meaning as `released`.
  expired = 2,
  /// An operator ended the epoch (admin force-release): the "kick the
  /// stuck leader" lever, distinguishable from an expiry.
  force_released = 3,
};

[[nodiscard]] std::string_view to_string(transition t);

/// Outcome of a fenced lease operation (release / renew).
enum class lease_status {
  ok,
  /// The presented epoch is no longer the key's current epoch: the lease
  /// expired (or was released) and the key moved on. The caller is a
  /// zombie; its operation had no effect.
  stale_epoch,
  /// The epoch is current but the caller is not the recorded holder
  /// (nobody is, or someone else won). No effect.
  not_leader,
  /// The transport to the service died underneath the call — the
  /// connection was severed (peer crash, network fault), NOT closed by
  /// this process. The registry never produces this; it is the network
  /// client's verdict (net::client), distinguishable from both a real
  /// fence (stale_epoch) and a user-initiated close() (which keeps the
  /// PR-4 crash-semantics mapping to stale_epoch). The holder must stop
  /// acting as leader either way; after a sever it may still hold the
  /// lease server-side until the TTL or the disconnect reclaim fences
  /// it.
  connection_lost,
};

/// Outcome of the single-acquirer CAS fast path (try_fast_claim).
enum class fast_claim_outcome {
  /// The epoch is granted to the caller; no election ran.
  claimed,
  /// Somebody already holds the epoch (fast claim or protocol win):
  /// the caller lost this epoch.
  held,
  /// A distributed election is armed for this epoch; the caller must
  /// fall back to the protocol path.
  armed,
  /// The epoch moved on between the attempt and the claim: lost.
  stale,
  /// The registry is shut down: the service stopped, no grant. The
  /// caller reports the acquire as rejected (the fast path must not
  /// hand out leases on a stopped service).
  shutdown,
};

struct fast_claim_result {
  fast_claim_outcome outcome = fast_claim_outcome::stale;
  /// Lease deadline; meaningful only when outcome == claimed.
  std::chrono::steady_clock::time_point deadline{};
};

/// Admin snapshot of one key's state (list_keys / inspect). Consistent
/// per key — taken under the key's shard lock — but keys may move on
/// between snapshot and use.
struct key_inspection {
  std::string key;
  instance_entry entry;
  /// Holding session, -1 when unheld.
  int leader = -1;
  /// time_point::max() = non-expiring lease (or unheld).
  std::chrono::steady_clock::time_point lease_deadline =
      std::chrono::steady_clock::time_point::max();
  /// Grant mode as text: "open", "fast_claimed", or "protocol_armed".
  std::string_view mode;
  std::uint64_t attempts_this_epoch = 0;
  std::uint64_t last_epoch_attempts = 0;
};

/// One fused adaptive acquire entry (begin_adaptive_attempt): the
/// attempt registration plus, when the contention estimate was clear,
/// the fast-path outcome — all decided under one shard lock.
struct adaptive_attempt {
  attempt_info attempt;
  /// False when the contention estimate said "contended" and no fast
  /// claim was attempted: the caller goes down the protocol path.
  bool fast_attempted = false;
  fast_claim_result fast;
};

class instance_registry {
 public:
  using clock = std::chrono::steady_clock;

  /// Last allocatable instance id: 64K short of the 32-bit var_id
  /// namespace, so exhaustion aborts well before any aliasing.
  static constexpr std::uint64_t instance_id_limit = 0xFFFF0000ull;

  /// `first_instance` is the id given to the first key; subsequent
  /// instances count up from there.
  explicit instance_registry(int shard_count,
                             std::uint64_t first_instance = 1u << 20);

  instance_registry(const instance_registry&) = delete;
  instance_registry& operator=(const instance_registry&) = delete;

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// Which shard owns `key`. Stable for the registry's lifetime.
  [[nodiscard]] int shard_of(const std::string& key) const;

  /// Current (instance, epoch) for `key`; lazily creates epoch 0.
  [[nodiscard]] instance_entry current(const std::string& key);

  /// Register one acquire attempt: like current(), but also bumps the
  /// epoch's attempt counter and returns the contention estimate.
  [[nodiscard]] attempt_info begin_attempt(const std::string& key);

  /// Current (instance, epoch) for `key` without creating state; empty
  /// when the key has never been acquired.
  [[nodiscard]] std::optional<instance_entry> peek(const std::string& key);

  /// The adaptive entry point, fused so the uncontended hot path takes
  /// the shard lock exactly once: register the attempt and — iff no
  /// contention is observed (this is the epoch's first attempt and the
  /// previous epoch saw at most one acquirer) — grant the epoch to
  /// `session` by CAS, with no election. The CAS is refused when the
  /// epoch is armed for a protocol (caller falls back to the
  /// distributed path), already held, or the registry is shut down; see
  /// fast_claim_outcome. Fusing also makes `stale` unreachable here:
  /// the epoch read and the claim happen under one lock.
  [[nodiscard]] adaptive_attempt begin_adaptive_attempt(
      const std::string& key, int session, clock::duration ttl);

  /// Gate for running a distributed election on (key, epoch): returns
  /// true and disables the fast path for the epoch when the epoch is
  /// current and unheld (idempotent across concurrent acquirers — they
  /// are meant to contend in the same instance). Returns false when the
  /// epoch was already granted or moved on: the caller loses without
  /// touching the network.
  [[nodiscard]] bool arm_protocol(const std::string& key, std::uint64_t epoch);

  /// Grant `epoch` to `session` — the protocol path's decider. Returns
  /// the lease deadline for the first claimer while the epoch is still
  /// current; empty for every later claimer (another survivor won) and
  /// for stale epochs. `ttl` == zero() means the lease never expires.
  /// For self-deciding protocols (full leader_elect) a refusal is a
  /// test-and-set safety violation — the caller CHECKs.
  [[nodiscard]] std::optional<clock::time_point> claim_win(
      const std::string& key, std::uint64_t epoch, int session,
      clock::duration ttl);

  /// Session currently holding `key` (-1 if none / not yet elected).
  [[nodiscard]] int leader_of(const std::string& key);

  /// Lease deadline of `key`'s current holder (time_point::max() for a
  /// non-expiring lease; empty when nobody holds the key).
  [[nodiscard]] std::optional<clock::time_point> lease_deadline_of(
      const std::string& key);

  /// Fenced release: only the recorded winner of exactly `epoch` — which
  /// must still be the current epoch — releases. On `ok` the epoch is
  /// bumped, a fresh election instance is allocated, and epoch waiters
  /// wake. A zombie presenting a stale epoch gets `stale_epoch` and
  /// changes nothing.
  lease_status release(const std::string& key, int session,
                       std::uint64_t epoch);

  /// Unfenced convenience release: releases whatever epoch `session`
  /// currently holds on `key` (`not_leader` when it holds nothing). Used
  /// by single-threaded holders that didn't keep the acquire epoch; a
  /// session racing its own expiry should use the fenced overload.
  lease_status release(const std::string& key, int session);

  /// Fenced release on behalf of a dead connection — same verdicts and
  /// fencing as release(), but recorded as `disconnect_reclaimed` so the
  /// stream (and the journal rendering it) can tell a crash reclaim from
  /// a voluntary release. Used by the network edge for late wins on
  /// closed connections.
  lease_status reclaim(const std::string& key, int session,
                       std::uint64_t epoch);

  /// Fenced renewal: extend the holder's lease to now + ttl. Same fencing
  /// as release(); `stale_epoch` tells a holder it lost the key.
  lease_status renew(const std::string& key, int session, std::uint64_t epoch,
                     clock::duration ttl);

  /// Release every key currently held by `session` (graceful
  /// disconnect). `on_released` (if set) is called with the shard index
  /// once per released key, under no lock. Returns the number of keys
  /// released.
  std::size_t release_all(int session,
                          const std::function<void(int)>& on_released = {});

  /// reclaim() in bulk: end every lease `session` still holds because
  /// its connection died (the network edge's crash reclaim — how a
  /// remote crash is observed faster than the lease TTL). Identical
  /// state effect to release_all; recorded as `disconnect_reclaimed`.
  std::size_t reclaim_all(int session,
                          const std::function<void(int)>& on_reclaimed = {});

  /// Every key `session` currently holds, in unspecified order. A
  /// snapshot — by the time the caller looks, leases may have expired.
  /// Introspection for the network edge (per-connection accounting) and
  /// tests; not a hot path.
  [[nodiscard]] std::vector<std::string> keys_held_by(int session) const;

  /// Admin: snapshot every registered key (shard by shard; not a
  /// cross-shard atomic view). Not a hot path.
  [[nodiscard]] std::vector<key_inspection> list_keys() const;

  /// Admin: snapshot one key; empty when the key was never acquired.
  [[nodiscard]] std::optional<key_inspection> inspect(
      const std::string& key) const;

  /// Admin: unconditionally end `key`'s current epoch regardless of
  /// holder — the operator's "kick the stuck leader" lever. Emits a
  /// `force_released` command (its own journal/watch kind, not an
  /// expiry). `not_leader` when the key is unknown or unheld (nothing
  /// to do).
  lease_status force_release(const std::string& key);

  /// Force-release every holder whose lease deadline is <= now: bump the
  /// epoch, allocate a fresh instance, wake epoch waiters. `on_expired`
  /// (if set) is called with the shard index once per expired key, under
  /// no lock. Returns the number of leases expired.
  std::size_t sweep_expired(clock::time_point now,
                            const std::function<void(int)>& on_expired = {});

  /// Block until `key`'s epoch exceeds `epoch` (i.e. a release or expiry
  /// happened after the caller lost that epoch's election), or until
  /// shutdown(). A key that has never been acquired counts as epoch 0;
  /// waiting does not create key state or burn an instance id.
  void wait_for_epoch_above(const std::string& key, std::uint64_t epoch);

  /// Timed variant: additionally give up at `deadline`. Returns true
  /// when the epoch advanced (or shutdown() fired — the caller's retry
  /// then comes back rejected), false on timeout with the epoch
  /// unchanged.
  [[nodiscard]] bool wait_for_epoch_above_until(const std::string& key,
                                                std::uint64_t epoch,
                                                clock::time_point deadline);

  /// Wake every epoch waiter and make current/future waits return
  /// immediately. Called by the service's stop() so blocked acquirers
  /// fail over to a rejected acquire instead of sleeping forever.
  void shutdown();

  /// Keys registered in one shard / in total (for distribution checks).
  [[nodiscard]] std::size_t keys_in_shard(int shard) const;
  [[nodiscard]] std::size_t key_count() const;

  /// Instance ids still allocatable before the fail-fast guard trips.
  [[nodiscard]] std::uint64_t remaining_instance_ids() const noexcept;

  // --- The command stream (src/cmd/) ------------------------------------

  /// Start appending every mutation to the per-shard command log. Must
  /// be called before the registry sees concurrent traffic (the service
  /// enables it at construction when configured); commands emitted
  /// before are lost, which is fine for a fresh registry. Off by
  /// default: with recording off and no hook armed, the mutation paths
  /// assemble no command payloads — the adaptive fast path stays at its
  /// zero-allocation cost.
  void enable_command_log();

  [[nodiscard]] bool command_log_enabled() const noexcept {
    return recording_.load(std::memory_order_relaxed);
  }

  /// Every retained command, shard by shard (each shard's slice in seq
  /// order; cross-shard interleaving is unobservable — keys never
  /// migrate). Feed to replay().
  [[nodiscard]] std::vector<cmd::command> collect_commands() const;

  /// Retained commands with seq > floors[shard], shard by shard in seq
  /// order — the incremental form of collect_commands(). `floors` must
  /// have shard_count() entries. The replication layer drains new
  /// commands with it: per-shard floors advance monotonically, so each
  /// command is shipped exactly once even though the log is also
  /// consulted by snapshots.
  [[nodiscard]] std::vector<cmd::command> collect_commands_after(
      const std::vector<std::uint64_t>& floors) const;

  /// The shard's command-stream watermark: seq of the last command
  /// executed there (live or replayed). The cluster primary samples it
  /// right after a mutation to learn what the commit-before-ack gate
  /// must wait for.
  [[nodiscard]] std::uint64_t shard_last_seq(int shard) const;

  /// Command-log accounting (recorded lifetime vs retained in memory).
  [[nodiscard]] cmd::log_stats log_stats() const;

  /// Execute one recorded command against this registry — the replay
  /// half of the funnel. Validates before executing: the key must map
  /// to `c.shard` (a mismatch means a different shard count), `c.seq`
  /// must extend the shard's watermark without a gap, and the command's
  /// epoch/holder must match the state it claims to mutate. Returns an
  /// error string (state untouched) on any mismatch; commands are never
  /// re-appended to the replaying registry's own log (the watermark
  /// advances to `c.seq` instead, so a later snapshot matches the
  /// recorder's).
  [[nodiscard]] std::optional<std::string> apply(const cmd::command& c);

  /// Fold a command stream into this registry: apply() in order,
  /// stopping at the first error. Replaying a full stream into a fresh
  /// registry (or a post-snapshot suffix into a restore()d one)
  /// reconstructs the recorder's replayable state exactly — snapshot()
  /// on both sides yields byte-identical bytes.
  [[nodiscard]] std::optional<std::string> replay(
      const std::vector<cmd::command>& log);

  /// Serialize the replayable state (see src/cmd/snapshot.hpp for the
  /// format and the normalizations that make two equivalent registries
  /// encode byte-identically). With `trim_log`, retained commands
  /// covered by this snapshot are dropped afterwards — the snapshot is
  /// their compaction — bounding log memory for long-running servers.
  [[nodiscard]] std::vector<std::uint8_t> snapshot(bool trim_log = false);

  /// Load a snapshot into this (required: empty) registry. Remaining
  /// lease TTLs are re-anchored to this registry's clock: a lease with
  /// 3 s left at snapshot time expires ~3 s after the restore. With
  /// `fence_restored`, every restored key's epoch is then bumped (one
  /// `epoch_bumped` command each): pre-snapshot leaseholders answer
  /// `stale_epoch` from their first fenced op, instead of being
  /// resurrected into leases they may have lost.
  ///
  /// `fence_bump` is how far past the restored epoch the fence jumps
  /// (>= 1). A snapshot is a *prefix* of the truth: epochs granted after
  /// the last dump and before the crash are invisible here, so a bump
  /// of 1 can re-grant an epoch some pre-crash client already won —
  /// two leaders holding the same (key, epoch) fencing token. A large
  /// jump (elect_server defaults to 2^20) clears every epoch the crash
  /// gap could plausibly have granted; the chaos checker's
  /// unique-holder rule is what verifies the assumption. Returns an
  /// error on a malformed snapshot or a shard-count mismatch; the
  /// registry must be discarded if restore fails partway.
  [[nodiscard]] std::optional<std::string> restore(
      const std::vector<std::uint8_t>& bytes, bool fence_restored,
      std::uint64_t fence_bump = 1);

  /// restore() for a registry that already holds state: drop every key,
  /// log entry, and watermark, then load `bytes` without fencing. The
  /// replication layer installs a primary's snapshot on a lagging or
  /// diverged follower with it — the snapshot IS the authoritative
  /// state, so nothing local survives (epoch waiters are woken and
  /// re-evaluate against the installed state). Same error conditions
  /// as restore(); on error the registry is left cleared, not torn.
  [[nodiscard]] std::optional<std::string> install_snapshot(
      const std::vector<std::uint8_t>& bytes);

  /// Failover fencing (elect::repl): called by a node the moment it
  /// becomes primary, with the cluster's --fence-bump margin. Every
  /// known *unheld* key's epoch jumps by `bump` immediately (one
  /// `epoch_bumped` command each, replicated like any mutation), so
  /// epochs the deposed primary may have granted past the commit point
  /// can never be re-granted. A *held* key keeps its holder and epoch —
  /// a quorum-committed lease survives failover and its holder's fenced
  /// ops keep answering ok — but the bump is recorded as pending and
  /// lands when that epoch ends, so the key's next grant jumps clear
  /// too. Pending bumps are leader-local soft state (not part of the
  /// replayable stream until they fire); a primary that fails before a
  /// pending bump lands is covered by its successor's own fence_all().
  /// Returns the number of keys fenced (immediately or pending).
  std::size_t fence_all(std::uint64_t bump);

  /// Invoked (under no lock) once per mutation the watch/journal layers
  /// render: every command kind except `renewed` (a renewal moves no
  /// leadership; it is recorded in the log only).
  using command_hook = std::function<void(const cmd::command&)>;

  /// Install the command hook. `armed` is a cheap publish gate the
  /// hook's owner keeps current (true iff anyone is listening): the
  /// registry skips the hook entirely — no command assembly, no
  /// function call — while it reads false, which keeps the adaptive
  /// fast path at its zero-subscriber cost. Must be called before the
  /// registry sees concurrent traffic (the service installs it at
  /// construction); the hook runs on whichever thread performed the
  /// mutation.
  void set_command_hook(const std::atomic<bool>& armed, command_hook hook);

 private:
  /// How the current epoch has been (or may be) granted.
  enum class grant_mode : std::uint8_t {
    /// Nobody holds the epoch and no election is armed: both paths open.
    open,
    /// The fast path granted the epoch; no protocol may ever run for it.
    fast_claimed,
    /// A distributed election is (or was) running; fast path disabled.
    protocol_armed,
  };

  struct key_state {
    instance_entry entry;
    int leader = -1;
    clock::time_point lease_deadline = clock::time_point::max();
    /// The same deadline on the logical clock (ms since construction);
    /// cmd::lease_forever when non-expiring. What snapshots record —
    /// wall-clock-independent, reconstructable from the command stream.
    std::uint64_t logical_deadline_ms = cmd::lease_forever;
    grant_mode mode = grant_mode::open;
    /// Contention estimate inputs (see attempt_info).
    std::uint64_t attempts_this_epoch = 0;
    std::uint64_t last_epoch_attempts = 0;
    /// Deferred failover fence (fence_all on a held key): added to the
    /// epoch when it next ends, then cleared. Leader-local soft state —
    /// never snapshotted or replayed; it shapes the commands a primary
    /// *emits*, not how commands apply.
    std::uint64_t pending_fence = 0;
  };

  struct shard {
    mutable std::mutex mutex;
    std::condition_variable epoch_changed;
    std::unordered_map<std::string, key_state> keys;
    /// Retained command log (appended only while recording) and the
    /// shard's watermark: seq/logical-time of the last command executed
    /// here, live or replayed. All guarded by `mutex`.
    std::vector<cmd::command> log;
    std::uint64_t next_seq = 1;
    std::uint64_t last_seq = 0;
    std::uint64_t last_at_ms = 0;
  };

  shard& shard_for(const std::string& key);
  key_state& state_locked(shard& s, const std::string& key);
  /// Shared body of the epoch waits: park until `key`'s epoch exceeds
  /// `epoch` or shutdown() fires (-> true), or until `deadline` passes
  /// (-> false; nullptr waits forever).
  bool wait_for_epoch_above_impl(const std::string& key, std::uint64_t epoch,
                                 const clock::time_point* deadline);
  /// Allocate a fresh instance id; aborts at instance_id_limit (see
  /// file comment) instead of wrapping the 32-bit var_id namespace.
  [[nodiscard]] election::election_id allocate_instance();
  /// Milliseconds since construction — the logical clock commands are
  /// stamped with (steady-based: immune to wall-clock jumps).
  [[nodiscard]] std::uint64_t logical_now_ms() const;
  /// Bump `key` to a fresh (instance, epoch) with no holder. Caller holds
  /// the shard lock and must notify epoch_changed after unlocking.
  void bump_epoch_locked(key_state& state);
  /// Stamp both lease-deadline representations from a grant/renewal
  /// command (steady deadline derived from the logical one, so live and
  /// replayed executions agree).
  void set_lease_locked(key_state& state, const cmd::command& c);
  /// THE mutation funnel: execute `c` against `state` (deterministic
  /// given the command), advance the shard watermark, and — live path
  /// (`from_replay` false) while recording — assign the next seq and
  /// append to the shard log. Caller holds the shard lock, fires the
  /// hook / notifies waiters after unlocking. Replayed commands keep
  /// their recorded seq and are never re-appended.
  void apply_command_locked(shard& s, key_state& state, cmd::command& c,
                            bool from_replay);
  /// Shared body of the fenced epoch-enders: release() and reclaim()
  /// differ only in the command kind they record.
  lease_status end_epoch_fenced(const std::string& key, int session,
                                std::uint64_t epoch, cmd::command_kind kind);
  /// If `state` carries a pending failover fence, emit the deferred
  /// epoch_bumped now (the epoch just ended — the next grant must jump
  /// clear of the deposed primary's uncommitted tail) and return the
  /// command for publication. Caller holds the shard lock.
  [[nodiscard]] std::optional<cmd::command> fence_after_end_locked(
      shard& s, key_state& state, const std::string& key,
      std::int32_t shard_index, std::uint64_t at_ms);
  /// Scan every shard and bump every key matching `predicate` (checked
  /// under the shard lock); waiters are notified per shard and
  /// `on_bumped(shard_index)` runs once per bumped key, under no lock.
  /// Each bump emits a `kind` command for the ended epoch.
  /// Shared engine of release_all / reclaim_all (match: held by one
  /// session) and sweep_expired (match: lease deadline passed).
  std::size_t bump_matching(const std::function<bool(const key_state&)>& predicate,
                            const std::function<void(int)>& on_bumped,
                            cmd::command_kind kind);
  /// Is the command hook installed *and* armed right now? The gate
  /// callers check before assembling command payloads under the shard
  /// lock.
  [[nodiscard]] bool hook_live() const noexcept {
    return hook_armed_ != nullptr &&
           hook_armed_->load(std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<shard>> shards_;
  std::atomic<std::uint64_t> next_instance_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> recording_{false};
  /// Origin of the logical clock.
  const clock::time_point base_;
  /// Mutation hook + its owner's publish gate (see set_command_hook).
  /// Written once before concurrent use.
  command_hook hook_;
  const std::atomic<bool>* hook_armed_ = nullptr;
};

}  // namespace elect::svc
