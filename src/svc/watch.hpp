// elect::svc::watch_hub — leader-change subscriptions over the
// registry's transition hook.
//
// The registry publishes one event per leader transition (elected /
// released / expired); the hub fans each event out to every callback
// subscribed to that key. Delivery is asynchronous: publishers (a
// releasing client thread, the lease sweeper, a pool node claiming a
// win) only enqueue under the hub mutex and move on, and a dedicated
// notifier thread runs the callbacks — so a slow watcher can never
// stall an election, a release, or the sweeper.
//
// Guarantees (the ones api::client::watch documents to users):
//   * every transition on a watched key that happens after add()
//     returns is delivered exactly once per subscription, in the order
//     the hub observed it — unless the event queue overflows
//     (max_queued_events), in which case events are counted as dropped
//     rather than blocking the publisher;
//   * there is NO ordering guarantee across different keys;
//   * after remove() returns, the callback will never run again (remove
//     blocks while a delivery to that subscription is in flight — which
//     is also why a callback must not call remove() for a *different*
//     subscription that may itself be mid-delivery; cancelling its own
//     is fine and detected).
//
// Callbacks run on the notifier thread. They may call back into the
// service (acquire/release take only shard locks, which the notifier
// does not hold), but a callback that blocks indefinitely blocks all
// watch delivery — treat it like a signal handler: record and return.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/registry.hpp"

namespace elect::svc {

/// One leader transition, as delivered to watchers. For `elected`,
/// `epoch` is the granted epoch and `session` the new leader; for
/// `released`/`expired`, the epoch that ended and its last holder.
struct watch_event {
  std::string key;
  std::uint64_t epoch = 0;
  transition kind = transition::elected;
  int session = -1;
};

/// Point-in-time hub counters (reported under "watch" in the service
/// report JSON).
struct watch_report {
  /// Live subscriptions.
  std::uint64_t active = 0;
  /// Events enqueued for at least one subscriber.
  std::uint64_t published = 0;
  /// Callback invocations completed (one event to N watchers counts N).
  std::uint64_t delivered = 0;
  /// Events discarded because the queue was at max_queued_events.
  std::uint64_t dropped = 0;
};

class watch_hub {
 public:
  using callback = std::function<void(const watch_event&)>;

  /// Queue bound: transitions published while callbacks lag. Past it the
  /// hub drops (and counts) rather than blocking publishers or growing
  /// without bound behind a wedged callback.
  static constexpr std::size_t max_queued_events = 1u << 16;

  watch_hub();
  ~watch_hub();

  watch_hub(const watch_hub&) = delete;
  watch_hub& operator=(const watch_hub&) = delete;

  /// Subscribe `fn` to `key`'s transitions. Returns the subscription id
  /// (never 0). Events published before add() returns may or may not be
  /// seen; everything after is.
  [[nodiscard]] std::uint64_t add(std::string key, callback fn);

  /// Unsubscribe. Blocks until no delivery to this subscription is in
  /// flight, so the callback never runs after remove() returns (no-op
  /// for unknown ids; safe from inside the subscription's own callback).
  void remove(std::uint64_t id);

  /// Keep armed() true even with zero subscriptions. The service sets
  /// this when the event journal is on: the registry's transition hook
  /// must fire for every transition (to journal it), not just while
  /// someone watches. stop() still disarms.
  void force_arm();

  /// Called (outside the hub mutex) with the key of each event dropped
  /// to the queue bound — the journal's watch_drop feed. Set before any
  /// publisher can run (service construction); not synchronized against
  /// concurrent publish.
  void set_drop_hook(std::function<void(const std::string&)> fn);

  /// Publish one transition (the registry hook's target). Cheap when
  /// nobody watches `key`: armed() gates the call before any of this
  /// runs, and a non-matching key costs one map probe under the mutex.
  void publish(const std::string& key, std::uint64_t epoch, transition kind,
               int session);

  /// Stop the notifier thread. Queued-but-undelivered events are
  /// dropped (counted); add/publish after stop() are no-ops. Idempotent.
  void stop();

  /// True while at least one subscription is live — the registry's
  /// publish gate, readable lock-free from the grant fast path.
  [[nodiscard]] const std::atomic<bool>& armed() const noexcept {
    return armed_;
  }

  [[nodiscard]] watch_report report() const;

 private:
  /// The callback is held behind a shared_ptr so the notifier's
  /// per-event snapshot copies one refcount per target instead of a
  /// deep std::function (which may own captured state — at fanout scale
  /// those copies were the hub's hottest allocation).
  struct watcher {
    std::string key;
    std::shared_ptr<const callback> fn;
  };

  void notifier_main();

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;      // wakes the notifier
  std::condition_variable delivered_cv_;  // wakes remove() waiters
  std::unordered_map<std::uint64_t, watcher> watchers_;
  /// key -> subscription ids, the publish-side filter.
  std::unordered_map<std::string, std::vector<std::uint64_t>> by_key_;
  std::deque<watch_event> queue_;
  /// Subscriptions the notifier is invoking right now (outside the
  /// mutex); remove() waits until its id leaves this set.
  std::vector<std::uint64_t> delivering_;
  std::uint64_t next_id_ = 1;
  bool stopped_ = false;
  bool forced_ = false;
  std::function<void(const std::string&)> drop_hook_;

  std::thread notifier_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace elect::svc
