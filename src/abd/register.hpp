// ABD atomic register emulation over the communicate primitive
// ([ABND95] — "Sharing memory robustly in message-passing systems").
//
// This is the substrate the paper's related work uses to port
// shared-memory algorithms into message passing ("emulate efficient
// shared-memory solutions via simulations"; each register operation costs
// O(n) messages). We provide a multi-writer multi-reader register:
//
//   write(v): collect to learn the highest (timestamp, writer) tag, then
//             propagate (max_ts + 1, self, v) to a quorum;
//   read():   collect, pick the max-tag value, then *write back* that
//             value to a quorum before returning — the write-back is what
//             makes concurrent reads linearizable.
//
// Each operation is 2 communicate calls = Θ(n) messages.
#pragma once

#include <cstdint>

#include "engine/ids.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::abd {

/// Name of an ABD register. `space` distinguishes independent registers.
[[nodiscard]] inline engine::var_id register_var(std::uint32_t space,
                                                 std::uint32_t index = 0) {
  return {engine::var_family::abd_register, space, index};
}

/// Write `value`; returns the timestamp the write was performed at.
[[nodiscard]] engine::task<std::int64_t> write(engine::node& self,
                                               engine::var_id reg,
                                               std::int64_t value);

/// Read the register; `default_value` is returned if it was never
/// written. Linearizable with respect to concurrent reads and writes.
[[nodiscard]] engine::task<std::int64_t> read(engine::node& self,
                                              engine::var_id reg,
                                              std::int64_t default_value = 0);

}  // namespace elect::abd
