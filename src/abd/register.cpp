#include "abd/register.hpp"

#include "engine/views.hpp"

namespace elect::abd {

using engine::tagged_register;

namespace {

/// Highest-tag register record across the collected views; nullopt tag
/// (writer == no_process, timestamp == 0) if nobody has written yet.
tagged_register<std::int64_t> max_tag(
    const std::vector<engine::view_entry>& views, std::int64_t default_value) {
  tagged_register<std::int64_t> best{0, no_process, default_value};
  engine::for_each_view<tagged_register<std::int64_t>>(
      views, [&](const tagged_register<std::int64_t>& reg) {
        best.merge(reg);
      });
  return best;
}

}  // namespace

engine::task<std::int64_t> write(engine::node& self, engine::var_id reg,
                                 std::int64_t value) {
  // Phase 1: discover the highest existing tag.
  const auto views = co_await self.collect(reg);
  const tagged_register<std::int64_t> current = max_tag(views, 0);

  // Phase 2: install (max_ts + 1, self, value) at a quorum.
  const tagged_register<std::int64_t> record{current.timestamp + 1, self.id(),
                                             value};
  auto delta = self.stage_register(reg, record);
  co_await self.propagate(reg, delta);
  co_return static_cast<std::int64_t>(record.timestamp);
}

engine::task<std::int64_t> read(engine::node& self, engine::var_id reg,
                                std::int64_t default_value) {
  // Phase 1: collect and select the max-tag record.
  const auto views = co_await self.collect(reg);
  const tagged_register<std::int64_t> best = max_tag(views, default_value);

  // Phase 2: write back the selected record so any later read sees a tag
  // at least this high (linearizability of reads).
  if (best.writer != no_process) {
    auto delta = self.stage_register(reg, best);
    co_await self.propagate(reg, delta);
  }
  co_return best.value;
}

}  // namespace elect::abd
