#include "chaos/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/rng.hpp"

namespace elect::chaos {

namespace {

/// Labels for the plan-derivation stream (distinct from the nemesis'
/// per-connection streams, which derive under different labels).
constexpr std::uint64_t plan_label = 0x706c616eULL;  // "plan"

fault_policy flaky_policy(rng_stream& rng) {
  fault_policy p;
  p.drop = 0.005 + rng.next_double() * 0.02;
  p.duplicate = 0.01 + rng.next_double() * 0.05;
  p.delay = 0.05 + rng.next_double() * 0.25;
  p.delay_min_ms = 1;
  p.delay_max_ms = static_cast<std::uint32_t>(rng.between(5, 40));
  p.dribble = 0.01 + rng.next_double() * 0.05;
  p.dribble_chunk = static_cast<std::uint32_t>(rng.between(1, 7));
  p.dribble_gap_ms = static_cast<std::uint32_t>(rng.between(1, 3));
  return p;
}

fault_policy partition_policy(rng_stream& rng) {
  fault_policy p;
  // Cut 1..group_count-1 groups — never all of them, so some workers
  // keep making progress and the checker has cross-history evidence to
  // compare the partitioned side against after the heal.
  const int cut = static_cast<int>(rng.between(1, group_count - 1));
  while (__builtin_popcountll(p.partition_groups) < cut) {
    p.partition_groups |= 1ull << rng.below(group_count);
  }
  // Light reordering on the healthy side keeps the run interesting.
  p.delay = 0.05;
  p.delay_min_ms = 1;
  p.delay_max_ms = 10;
  return p;
}

fault_policy sever_policy(rng_stream& rng) {
  fault_policy p;
  p.sever = 0.002 + rng.next_double() * 0.01;
  p.duplicate = 0.02;
  p.delay = 0.1;
  p.delay_min_ms = 1;
  p.delay_max_ms = 15;
  return p;
}

void append_policy(std::string& out, const fault_policy& p) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                " drop=%.6f dup=%.6f delay=%.6f dmin=%u dmax=%u"
                " dribble=%.6f chunk=%u gap=%u sever=%.6f partition=%llu",
                p.drop, p.duplicate, p.delay, p.delay_min_ms, p.delay_max_ms,
                p.dribble, p.dribble_chunk, p.dribble_gap_ms, p.sever,
                static_cast<unsigned long long>(p.partition_groups));
  out += buffer;
}

}  // namespace

plan make_plan(std::uint64_t seed, std::uint32_t phase_ms, bool smoke) {
  rng_stream rng(seed, {plan_label});
  plan result;
  result.seed = seed;

  const auto calm = [&](const char* name, std::uint32_t ms) {
    phase p;
    p.name = name;
    p.duration_ms = ms;
    result.phases.push_back(std::move(p));
  };

  // Open calm: workers connect and build up baseline churn (and the
  // snapshotter gets at least one dump in before any kill).
  calm("warmup", phase_ms);

  // The middle is a seed-shuffled mix. Smoke keeps one of each fault
  // family; full runs draw 4-7 phases.
  std::vector<int> mix;
  if (smoke) {
    mix = {0, 1, 2};  // flaky, partition, kill
  } else {
    const int extra = static_cast<int>(rng.between(4, 7));
    for (int i = 0; i < extra; ++i) {
      mix.push_back(static_cast<int>(rng.below(4)));
    }
    // Every full run gets at least one partition and one kill, wherever
    // the draw put them; append if the draw missed them.
    if (std::find(mix.begin(), mix.end(), 1) == mix.end()) mix.push_back(1);
    if (std::find(mix.begin(), mix.end(), 2) == mix.end()) mix.push_back(2);
  }

  for (const int kind : mix) {
    phase p;
    p.duration_ms = phase_ms;
    switch (kind) {
      case 0:
        p.name = "flaky";
        p.policy = flaky_policy(rng);
        break;
      case 1:
        p.name = "partition";
        p.policy = partition_policy(rng);
        break;
      case 2:
        p.name = "kill";
        p.kill_server = true;
        // Post-restart faults stay light: the interesting part is the
        // restore fence meeting pre-crash grants.
        p.policy.delay = 0.05;
        p.policy.delay_min_ms = 1;
        p.policy.delay_max_ms = 10;
        break;
      default:
        p.name = "sever";
        p.policy = sever_policy(rng);
        break;
    }
    result.phases.push_back(std::move(p));
    // Breathe between fault phases so severed clients reconnect and
    // histories re-anchor (heal phases also fire the taint-severs).
    calm("heal", phase_ms / 2);
  }

  calm("drain", phase_ms);
  return result;
}

std::string to_trace(const plan& p) {
  std::string out = "elect_chaos trace v1\n";
  out += "seed " + std::to_string(p.seed) + "\n";
  for (const phase& ph : p.phases) {
    out += "phase name=" + ph.name +
           " ms=" + std::to_string(ph.duration_ms) +
           " kill=" + (ph.kill_server ? std::string("1") : std::string("0"));
    append_policy(out, ph.policy);
    out += "\n";
  }
  return out;
}

std::optional<plan> parse_trace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "elect_chaos trace v1") {
    return std::nullopt;
  }
  plan result;
  bool saw_seed = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head == "seed") {
      fields >> result.seed;
      if (fields.fail()) return std::nullopt;
      saw_seed = true;
      continue;
    }
    if (head != "phase") return std::nullopt;
    phase ph;
    std::string token;
    while (fields >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) return std::nullopt;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "name") ph.name = value;
        else if (key == "ms") ph.duration_ms = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "kill") ph.kill_server = value == "1";
        else if (key == "drop") ph.policy.drop = std::stod(value);
        else if (key == "dup") ph.policy.duplicate = std::stod(value);
        else if (key == "delay") ph.policy.delay = std::stod(value);
        else if (key == "dmin") ph.policy.delay_min_ms = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "dmax") ph.policy.delay_max_ms = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "dribble") ph.policy.dribble = std::stod(value);
        else if (key == "chunk") ph.policy.dribble_chunk = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "gap") ph.policy.dribble_gap_ms = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "sever") ph.policy.sever = std::stod(value);
        else if (key == "partition") ph.policy.partition_groups = std::stoull(value);
        else return std::nullopt;  // unknown key: a different dialect
      } catch (...) {
        return std::nullopt;
      }
    }
    result.phases.push_back(std::move(ph));
  }
  if (!saw_seed || result.phases.empty()) return std::nullopt;
  return result;
}

}  // namespace elect::chaos
