#include "chaos/checker.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace elect::chaos {

namespace {

/// Pull one "field":value scalar out of a JSON line. Good enough for
/// the journal's flat, known-shape records; returns false when absent.
bool json_u64(const std::string& line, const std::string& field,
              std::uint64_t& out) {
  const std::string needle = "\"" + field + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  try {
    out = std::stoull(line.substr(at + needle.size()));
  } catch (...) {
    return false;
  }
  return true;
}

bool json_i64(const std::string& line, const std::string& field,
              std::int64_t& out) {
  const std::string needle = "\"" + field + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  try {
    out = std::stoll(line.substr(at + needle.size()));
  } catch (...) {
    return false;
  }
  return true;
}

bool json_string(const std::string& line, const std::string& field,
                 std::string& out) {
  const std::string needle = "\"" + field + "\":\"";
  const auto start = line.find(needle);
  if (start == std::string::npos) return false;
  const auto from = start + needle.size();
  const auto end = line.find('"', from);
  if (end == std::string::npos) return false;
  out = line.substr(from, end - from);
  return true;
}

/// A grant witness for R1/R3: who claims to have won (key, epoch), and
/// when the claim's operation ran (client records only — journal lines
/// carry no runner-clock time and join R1 but not R3).
struct grant_witness {
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::string who;  // "worker 3" / "journal inc 1 holder 7"
  bool timed = false;
};

std::string format_us(std::uint64_t us) {
  return std::to_string(us / 1000) + "." + std::to_string(us % 1000 / 100) +
         "ms";
}

}  // namespace

incarnation_evidence parse_journal(const std::string& jsonl) {
  incarnation_evidence out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    std::string kind;
    if (!json_string(line, "kind", kind) || kind != "elected") continue;
    journal_grant g;
    if (!json_string(line, "key", g.key)) continue;
    if (!json_u64(line, "epoch", g.epoch)) continue;
    (void)json_i64(line, "holder", g.holder);
    out.grants.push_back(std::move(g));
  }
  return out;
}

std::string report::to_string() const {
  std::string out = "checker: " + std::to_string(records) + " records, " +
                    std::to_string(grants) + " grants, " +
                    std::to_string(watch_events) + " watch events, " +
                    std::to_string(journal_grants) + " journal grants";
  if (ok()) {
    out += " — OK\n";
    return out;
  }
  out += " — " + std::to_string(violations.size()) + " VIOLATION(S)\n";
  for (const violation& v : violations) {
    out += "  [" + v.rule + "] " + v.detail + "\n";
  }
  return out;
}

report check(const std::vector<record>& records,
             const std::vector<incarnation_evidence>& journals) {
  report out;
  out.records = records.size();

  // ---- R1: unique holder per (key, epoch) --------------------------
  // Collect every independent claim of "I/he won (key, epoch)" and
  // flag (key, epoch) pairs with more than one distinct winner.
  // Watch events join as evidence about *sessions*; the same session
  // reported twice (duplication) is fine.
  std::map<std::pair<std::string, std::uint64_t>,
           std::map<std::string, grant_witness>>
      claims;  // (key, epoch) -> winner identity -> earliest witness

  for (const record& r : records) {
    if (r.op == op_kind::acquire && r.result == outcome::ok) {
      out.grants++;
      grant_witness w{r.start_us, r.end_us,
                      "worker " + std::to_string(r.worker), true};
      auto& slot = claims[{r.key, r.epoch}];
      const std::string id = "worker:" + std::to_string(r.worker);
      const auto it = slot.find(id);
      if (it == slot.end()) {
        slot.emplace(id, w);
      } else {
        // The same worker winning the same (key, epoch) twice is its
        // own violation — an epoch must be granted once.
        out.violations.push_back(
            {"R1", "worker " + std::to_string(r.worker) + " won key '" +
                       r.key + "' epoch " + std::to_string(r.epoch) +
                       " twice (at " + format_us(it->second.start_us) +
                       " and " + format_us(r.start_us) + ")"});
      }
    }
    if (r.op == op_kind::watch_event && r.transition == 0 /* elected */) {
      out.watch_events++;
      if (r.session >= 0) {
        grant_witness w{r.start_us, r.end_us,
                        "watch@" + std::to_string(r.worker) + " session " +
                            std::to_string(r.session),
                        false};
        claims[{r.key, r.epoch}].emplace(
            "session:" + std::to_string(r.session), w);
      }
    } else if (r.op == op_kind::watch_event) {
      out.watch_events++;
    }
  }
  for (std::size_t inc = 0; inc < journals.size(); ++inc) {
    for (const journal_grant& g : journals[inc].grants) {
      out.journal_grants++;
      grant_witness w{0, 0,
                      "journal inc " + std::to_string(inc) + " holder " +
                          std::to_string(g.holder),
                      false};
      claims[{g.key, g.epoch}].emplace(
          "jholder:" + std::to_string(inc) + ":" + std::to_string(g.holder),
          w);
    }
  }
  for (const auto& [key_epoch, winners] : claims) {
    // Distinct worker claims are always distinct holders. session/
    // jholder identities can legitimately coexist with the one worker
    // claim (they are the same grant seen through different lenses),
    // so only multiple *worker* claims, multiple *journal* claims
    // within one incarnation, or multiple distinct sessions convict.
    std::vector<std::string> workers;
    std::set<std::int64_t> sessions;
    std::map<std::size_t, std::set<std::int64_t>> per_inc_holders;
    for (const auto& [id, w] : winners) {
      if (id.rfind("worker:", 0) == 0) workers.push_back(w.who);
      if (id.rfind("session:", 0) == 0) {
        sessions.insert(std::stoll(id.substr(8)));
      }
      if (id.rfind("jholder:", 0) == 0) {
        const auto colon = id.find(':', 8);
        per_inc_holders[std::stoull(id.substr(8, colon - 8))].insert(
            std::stoll(id.substr(colon + 1)));
      }
    }
    const auto convict = [&](const std::string& what) {
      out.violations.push_back(
          {"R1", "key '" + key_epoch.first + "' epoch " +
                     std::to_string(key_epoch.second) + ": " + what});
    };
    if (workers.size() > 1) {
      std::string who;
      for (const auto& w : workers) who += (who.empty() ? "" : ", ") + w;
      convict("multiple winners (" + who + ")");
    }
    if (sessions.size() > 1) {
      convict("watch events name " + std::to_string(sessions.size()) +
              " distinct sessions as the elected holder");
    }
    for (const auto& [inc, holders] : per_inc_holders) {
      if (holders.size() > 1) {
        convict("journal incarnation " + std::to_string(inc) + " elected " +
                std::to_string(holders.size()) + " distinct holders");
      }
    }
  }

  // ---- R2: journal epoch monotonicity ------------------------------
  {
    // Within an incarnation: strictly increasing per key. Across
    // incarnations: the first elected on a key must exceed everything
    // any earlier incarnation's journal granted on it.
    std::unordered_map<std::string, std::uint64_t> prior_max;  // before inc
    for (std::size_t inc = 0; inc < journals.size(); ++inc) {
      std::unordered_map<std::string, std::uint64_t> last;  // within inc
      for (const journal_grant& g : journals[inc].grants) {
        const auto it = last.find(g.key);
        if (it != last.end() && g.epoch <= it->second) {
          out.violations.push_back(
              {"R2", "journal inc " + std::to_string(inc) + " key '" +
                         g.key + "': epoch " + std::to_string(g.epoch) +
                         " not above prior " + std::to_string(it->second)});
        }
        if (it == last.end()) {
          const auto prior = prior_max.find(g.key);
          if (prior != prior_max.end() && g.epoch <= prior->second) {
            out.violations.push_back(
                {"R2", "journal inc " + std::to_string(inc) + " key '" +
                           g.key + "': first epoch " +
                           std::to_string(g.epoch) +
                           " does not clear earlier incarnations' max " +
                           std::to_string(prior->second) +
                           " (restore fence too small?)"});
          }
        }
        last[g.key] = std::max(last[g.key], g.epoch);
      }
      for (const auto& [key, epoch] : last) {
        prior_max[key] = std::max(prior_max[key], epoch);
      }
    }
  }

  // ---- R3: real-time epoch order across histories ------------------
  // Sweep grants per key by start time, tracking the max epoch among
  // grants already *completed*; a new grant at or below that max went
  // backward in real time.
  {
    struct timed_grant {
      std::uint64_t start_us, end_us, epoch;
      int worker;
    };
    std::unordered_map<std::string, std::vector<timed_grant>> per_key;
    for (const record& r : records) {
      if (r.op == op_kind::acquire && r.result == outcome::ok) {
        per_key[r.key].push_back({r.start_us, r.end_us, r.epoch, r.worker});
      }
    }
    for (auto& [key, grants] : per_key) {
      std::sort(grants.begin(), grants.end(),
                [](const timed_grant& a, const timed_grant& b) {
                  return a.start_us < b.start_us;
                });
      // completed grants, ordered by end time, paired with epoch
      std::vector<timed_grant> done = grants;
      std::sort(done.begin(), done.end(),
                [](const timed_grant& a, const timed_grant& b) {
                  return a.end_us < b.end_us;
                });
      std::size_t drained = 0;
      std::uint64_t max_done_epoch = 0;
      const timed_grant* max_done = nullptr;
      for (const timed_grant& g : grants) {
        while (drained < done.size() && done[drained].end_us <= g.start_us) {
          if (done[drained].epoch >= max_done_epoch) {
            max_done_epoch = done[drained].epoch;
            max_done = &done[drained];
          }
          drained++;
        }
        if (max_done != nullptr && g.epoch <= max_done_epoch &&
            !(g.start_us == max_done->start_us &&
              g.worker == max_done->worker)) {
          out.violations.push_back(
              {"R3", "key '" + key + "': worker " + std::to_string(g.worker) +
                         " granted epoch " + std::to_string(g.epoch) +
                         " at " + format_us(g.start_us) + " after worker " +
                         std::to_string(max_done->worker) +
                         "'s grant of epoch " +
                         std::to_string(max_done_epoch) + " completed at " +
                         format_us(max_done->end_us) +
                         " (epoch went backward in real time)"});
        }
      }
    }
  }

  // ---- R4: zombie ops stay fenced ----------------------------------
  // Per (worker, key, epoch): once the worker saw the epoch end — its
  // own release-ok, or any stale_epoch/not_leader answer presenting
  // it — a later ok on the same token is an unfenced zombie op.
  {
    std::set<std::tuple<int, std::string, std::uint64_t>> ended;
    for (const record& r : records) {
      if (r.op != op_kind::release && r.op != op_kind::renew) continue;
      const auto token = std::make_tuple(r.worker, r.key, r.epoch);
      if (r.result == outcome::ok) {
        if (ended.count(token) != 0) {
          out.violations.push_back(
              {"R4", "worker " + std::to_string(r.worker) + " key '" +
                         r.key + "' epoch " + std::to_string(r.epoch) +
                         ": " + std::string(to_string(r.op)) +
                         " succeeded at " + format_us(r.start_us) +
                         " after the worker already observed the epoch end"});
        }
        if (r.op == op_kind::release) ended.insert(token);
      } else if (r.result == outcome::stale_epoch ||
                 r.result == outcome::not_leader) {
        ended.insert(token);
      }
    }
  }

  // ---- R5: watch event order per (worker, key) ---------------------
  {
    std::map<std::pair<int, std::string>, std::uint64_t> last_elected;
    for (const record& r : records) {
      if (r.op != op_kind::watch_event || r.transition != 0) continue;
      const auto key = std::make_pair(r.worker, r.key);
      const auto it = last_elected.find(key);
      if (it != last_elected.end() && r.epoch < it->second) {
        out.violations.push_back(
            {"R5", "worker " + std::to_string(r.worker) + " key '" + r.key +
                       "': elected event for epoch " +
                       std::to_string(r.epoch) + " arrived after epoch " +
                       std::to_string(it->second) +
                       " (watch stream went backward)"});
      }
      const std::uint64_t prior =
          it != last_elected.end() ? it->second : 0;
      last_elected[key] = std::max(prior, r.epoch);
    }
  }

  return out;
}

}  // namespace elect::chaos
