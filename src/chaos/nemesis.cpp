#include "chaos/nemesis.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/wire.hpp"

namespace elect::chaos {

namespace {

constexpr std::uint64_t nemesis_label = 0x6e656d65ULL;  // "neme"

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Rebuild a complete frame (length prefix + body) from a deframed
/// body — the inverse of what frame_reader strips.
std::vector<std::uint8_t> reframe(const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + body.size());
  const auto length = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
  }
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

}  // namespace

struct nemesis::impl {
  /// One frame waiting (or due) to be written to a direction's
  /// destination socket.
  struct pending_frame {
    std::vector<std::uint8_t> bytes;
    bool dribble = false;
  };

  /// One relay direction of a pair: read from src, deframe, fault,
  /// queue, write to dst.
  struct direction {
    int src_fd = -1;
    int dst_fd = -1;
    net::wire::frame_reader reader;
    rng_stream rng{1};
    /// Frames ordered by due time (steady ms). Equal keys keep
    /// insertion order (multimap), so undelayed traffic stays FIFO.
    std::multimap<std::uint64_t, pending_frame> queue;
    /// The frame currently being written; once started it must finish
    /// before any queued frame (partial frames cannot interleave).
    std::vector<std::uint8_t> active;
    std::size_t active_off = 0;
    bool active_dribble = false;
    std::uint32_t dribble_chunk = 3;
    std::uint32_t dribble_gap_ms = 2;
    /// Next time the active dribble writes a chunk.
    std::uint64_t active_due_ms = 0;
    /// dst socket returned EAGAIN; EPOLLOUT is armed on dst.
    bool write_blocked = false;
    /// Latest due time ever assigned to a server-push event frame on
    /// this direction. Event frames are delayed like anything else but
    /// never overtake each other: a TCP stream stalls (head-of-line),
    /// it does not reorder, and the watch contract — which the checker
    /// enforces (R5) — is per-connection event order. Responses stay
    /// fully reorderable; out-of-order responses are a deliberate
    /// robustness target of the protocol.
    std::uint64_t last_event_due_ms = 0;
  };

  struct pair {
    int id = 0;
    int group = 0;
    int client_fd = -1;
    int server_fd = -1;
    direction c2s;
    direction s2c;
    bool tainted = false;
  };

  struct control_message {
    enum class kind { policy, sever_all, stop } what = kind::stop;
    fault_policy policy;
    std::uint64_t ticket = 0;
  };

  explicit impl(nemesis_config config) : config_(std::move(config)) {
    start_ = std::chrono::steady_clock::now();
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return;
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.listen_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 128) != 0 || !set_nonblocking(listen_fd_)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    control_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd_ < 0 || control_fd_ < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    watch(listen_fd_, EPOLLIN);
    watch(control_fd_, EPOLLIN);
    loop_ = std::thread([this] { loop_main(); });
  }

  ~impl() { stop(); }

  [[nodiscard]] std::uint64_t now_ms() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  void watch(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void rearm(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void post(control_message m) {
    if (!loop_.joinable()) return;
    std::uint64_t ticket = 0;
    {
      const std::lock_guard<std::mutex> lock(control_mutex_);
      ticket = ++control_ticket_;
      m.ticket = ticket;
      control_queue_.push_back(std::move(m));
    }
    const std::uint64_t one = 1;
    (void)::write(control_fd_, &one, sizeof one);
    // Synchronous: phase boundaries must not race the phase they end.
    std::unique_lock<std::mutex> lock(control_mutex_);
    control_cv_.wait(lock,
                     [&] { return control_done_ >= ticket || stopped_; });
  }

  void stop() {
    if (loop_.joinable()) {
      post({control_message::kind::stop, {}, 0});
      loop_.join();
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (control_fd_ >= 0) ::close(control_fd_);
    listen_fd_ = epoll_fd_ = control_fd_ = -1;
  }

  // ---- loop side ----------------------------------------------------

  void loop_main() {
    epoll_event events[64];
    for (;;) {
      const int timeout = next_timeout_ms();
      const int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
      if (n < 0 && errno != EINTR) break;
      const std::uint64_t now = now_ms();
      bool stop_requested = false;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == control_fd_) {
          stop_requested = drain_control() || stop_requested;
          continue;
        }
        if (fd == listen_fd_) {
          accept_clients();
          continue;
        }
        const auto it = endpoints_.find(fd);
        if (it == endpoints_.end()) continue;
        pair* p = it->second;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          sever(p);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) read_side(p, fd);
        if ((events[i].events & EPOLLOUT) != 0) {
          direction& d = fd == p->server_fd ? p->c2s : p->s2c;
          d.write_blocked = false;
          rearm(fd, EPOLLIN);
        }
      }
      // Pump every direction whose due time arrived (and any just
      // unblocked by EPOLLOUT or fed by reads).
      for (auto it = pairs_.begin(); it != pairs_.end();) {
        pair* p = it->second.get();
        ++it;  // pump may sever (erasing the map entry)
        if (!pump(p, &p->c2s, now) || !pump(p, &p->s2c, now)) sever(p);
      }
      if (stop_requested) break;
    }
    // Close every pair; leave control fds to stop().
    std::vector<pair*> all;
    all.reserve(pairs_.size());
    for (auto& [id, p] : pairs_) all.push_back(p.get());
    for (pair* p : all) sever(p);
    const std::lock_guard<std::mutex> lock(control_mutex_);
    stopped_ = true;
    control_done_ = control_ticket_;
    control_cv_.notify_all();
  }

  [[nodiscard]] int next_timeout_ms() {
    std::uint64_t next = ~0ull;
    for (const auto& [id, p] : pairs_) {
      for (const direction* d : {&p->c2s, &p->s2c}) {
        if (!d->active.empty() && d->active_dribble && !d->write_blocked) {
          next = std::min(next, d->active_due_ms);
        }
        if (d->active.empty() && !d->queue.empty()) {
          next = std::min(next, d->queue.begin()->first);
        }
      }
    }
    if (next == ~0ull) return 200;
    const std::uint64_t now = now_ms();
    return next <= now ? 0
                       : static_cast<int>(std::min<std::uint64_t>(
                             next - now, 200));
  }

  /// Returns true when a stop was requested.
  bool drain_control() {
    std::uint64_t drained = 0;
    (void)::read(control_fd_, &drained, sizeof drained);
    bool stop_requested = false;
    for (;;) {
      control_message m;
      {
        const std::lock_guard<std::mutex> lock(control_mutex_);
        if (control_queue_.empty()) break;
        m = std::move(control_queue_.front());
        control_queue_.pop_front();
      }
      switch (m.what) {
        case control_message::kind::policy: {
          policy_ = m.policy;
          // Phase boundary: tainted pairs carry wedged synchronous
          // callers — sever them free.
          std::vector<pair*> tainted;
          for (auto& [id, p] : pairs_) {
            if (p->tainted) tainted.push_back(p.get());
          }
          for (pair* p : tainted) {
            bump([](nemesis_stats& s) { s.taint_severs++; });
            sever(p);
          }
          break;
        }
        case control_message::kind::sever_all: {
          std::vector<pair*> all;
          for (auto& [id, p] : pairs_) all.push_back(p.get());
          for (pair* p : all) sever(p);
          break;
        }
        case control_message::kind::stop:
          stop_requested = true;
          break;
      }
      const std::lock_guard<std::mutex> lock(control_mutex_);
      control_done_ = std::max(control_done_, m.ticket);
      control_cv_.notify_all();
    }
    return stop_requested;
  }

  void accept_clients() {
    for (;;) {
      const int client_fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (client_fd < 0) return;
      const int server_fd = connect_upstream();
      if (server_fd < 0) {
        // Server down (mid-restart): refuse by closing — the client
        // sees a sever and retries.
        ::close(client_fd);
        continue;
      }
      const int one = 1;
      (void)::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
      (void)::setsockopt(server_fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
      if (!set_nonblocking(client_fd) || !set_nonblocking(server_fd)) {
        ::close(client_fd);
        ::close(server_fd);
        continue;
      }
      auto p = std::make_unique<pair>();
      p->id = next_pair_id_++;
      p->group = p->id % group_count;
      p->client_fd = client_fd;
      p->server_fd = server_fd;
      p->c2s.src_fd = client_fd;
      p->c2s.dst_fd = server_fd;
      p->c2s.rng = rng_stream(config_.seed,
                              {nemesis_label,
                               static_cast<std::uint64_t>(p->id), 0});
      p->s2c.src_fd = server_fd;
      p->s2c.dst_fd = client_fd;
      p->s2c.rng = rng_stream(config_.seed,
                              {nemesis_label,
                               static_cast<std::uint64_t>(p->id), 1});
      watch(client_fd, EPOLLIN);
      watch(server_fd, EPOLLIN);
      endpoints_[client_fd] = p.get();
      endpoints_[server_fd] = p.get();
      bump([](nemesis_stats& s) { s.pairs_accepted++; });
      pairs_.emplace(p->id, std::move(p));
    }
  }

  [[nodiscard]] int connect_upstream() const {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.upstream_port);
    if (::inet_pton(AF_INET, config_.upstream_host.c_str(),
                    &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  void sever(pair* p) {
    if (endpoints_.erase(p->client_fd) == 0) return;  // already severed
    endpoints_.erase(p->server_fd);
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p->client_fd, nullptr);
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p->server_fd, nullptr);
    ::close(p->client_fd);
    ::close(p->server_fd);
    bump([](nemesis_stats& s) { s.pairs_severed++; });
    pairs_.erase(p->id);  // destroys *p
  }

  void read_side(pair* p, int fd) {
    direction& d = fd == p->client_fd ? p->c2s : p->s2c;
    std::uint8_t buffer[64 * 1024];
    for (;;) {
      const ssize_t got = ::recv(fd, buffer, sizeof buffer, 0);
      if (got > 0) {
        if (!d.reader.feed(buffer, static_cast<std::size_t>(got))) {
          sever(p);  // frame too large: corruption, kill the relay too
          return;
        }
        while (auto body = d.reader.next()) {
          if (!admit(p, d, *body)) {
            sever(p);
            return;
          }
        }
        continue;
      }
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (got < 0 && errno == EINTR) continue;
      sever(p);  // EOF or hard error on either side kills the pair
      return;
    }
  }

  /// Roll the active policy's dice for one deframed frame and queue the
  /// survivors. False = sever the pair now.
  [[nodiscard]] bool admit(pair* p, direction& d,
                           const std::vector<std::uint8_t>& body) {
    const bool partitioned =
        (policy_.partition_groups &
         (1ull << static_cast<unsigned>(p->group))) != 0;
    if (partitioned || d.rng.bernoulli(policy_.drop)) {
      p->tainted = true;
      bump([](nemesis_stats& s) { s.frames_dropped++; });
      return true;
    }
    if (d.rng.bernoulli(policy_.sever)) return false;
    const int copies = d.rng.bernoulli(policy_.duplicate) ? 2 : 1;
    if (copies == 2) bump([](nemesis_stats& s) { s.frames_duplicated++; });
    // Server->client push frames carry id 0 in their first 8 body
    // bytes; see last_event_due_ms for why they keep relative order.
    const bool event_frame =
        d.dst_fd == p->client_fd && body.size() >= 9 && body[0] == 0 &&
        body[1] == 0 && body[2] == 0 && body[3] == 0 && body[4] == 0 &&
        body[5] == 0 && body[6] == 0 && body[7] == 0;
    const std::uint64_t now = now_ms();
    for (int i = 0; i < copies; ++i) {
      pending_frame f;
      f.bytes = reframe(body);
      std::uint64_t due = now;
      if (policy_.delay > 0.0 && d.rng.bernoulli(policy_.delay)) {
        due += static_cast<std::uint64_t>(
            d.rng.between(policy_.delay_min_ms, policy_.delay_max_ms));
        bump([](nemesis_stats& s) { s.frames_delayed++; });
      }
      if (event_frame) {
        // Multimap insertion order breaks due ties, so an equal-due
        // later event still queues behind the earlier one.
        due = std::max(due, d.last_event_due_ms);
        d.last_event_due_ms = due;
      }
      if (policy_.dribble > 0.0 && d.rng.bernoulli(policy_.dribble)) {
        f.dribble = true;
        bump([](nemesis_stats& s) { s.frames_dribbled++; });
      }
      d.queue.emplace(due, std::move(f));
    }
    return true;
  }

  /// Write what is due on one direction. False = the pair must die
  /// (dst write error).
  [[nodiscard]] bool pump(pair* p, direction* d, std::uint64_t now) {
    (void)p;
    for (;;) {
      if (d->active.empty()) {
        if (d->queue.empty() || d->queue.begin()->first > now) return true;
        auto first = d->queue.begin();
        d->active = std::move(first->second.bytes);
        d->active_off = 0;
        d->active_dribble = first->second.dribble;
        d->active_due_ms = now;
        d->dribble_chunk = std::max<std::uint32_t>(
            1, policy_.dribble_chunk);
        d->dribble_gap_ms = policy_.dribble_gap_ms;
        d->queue.erase(first);
      }
      if (d->write_blocked) return true;
      if (d->active_dribble && d->active_due_ms > now) return true;
      const std::size_t remaining = d->active.size() - d->active_off;
      const std::size_t slice =
          d->active_dribble
              ? std::min<std::size_t>(remaining, d->dribble_chunk)
              : remaining;
      const ssize_t wrote = ::send(d->dst_fd, d->active.data() + d->active_off,
                                   slice, MSG_NOSIGNAL);
      if (wrote < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          d->write_blocked = true;
          rearm(d->dst_fd, EPOLLIN | EPOLLOUT);
          return true;
        }
        if (errno == EINTR) continue;
        return false;
      }
      d->active_off += static_cast<std::size_t>(wrote);
      if (d->active_off == d->active.size()) {
        d->active.clear();
        d->active_off = 0;
        d->active_dribble = false;
        bump([](nemesis_stats& s) { s.frames_forwarded++; });
        continue;
      }
      if (d->active_dribble) {
        d->active_due_ms = now + d->dribble_gap_ms;
        return true;
      }
      // Partial non-dribble write without EAGAIN: loop and finish.
    }
  }

  template <typename Fn>
  void bump(Fn fn) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    fn(stats_);
  }

  // ---- state --------------------------------------------------------

  nemesis_config config_;
  std::chrono::steady_clock::time_point start_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int control_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread loop_;

  // Loop-thread-only state.
  fault_policy policy_;
  int next_pair_id_ = 0;
  std::map<int, std::unique_ptr<pair>> pairs_;
  std::unordered_map<int, pair*> endpoints_;

  std::mutex control_mutex_;
  std::condition_variable control_cv_;
  std::deque<control_message> control_queue_;
  std::uint64_t control_ticket_ = 0;
  std::uint64_t control_done_ = 0;
  bool stopped_ = false;

  mutable std::mutex stats_mutex_;
  nemesis_stats stats_;
};

nemesis::nemesis(nemesis_config config)
    : impl_(std::make_unique<impl>(std::move(config))) {}

nemesis::~nemesis() = default;

bool nemesis::running() const { return impl_->loop_.joinable(); }

std::uint16_t nemesis::port() const { return impl_->port_; }

void nemesis::set_policy(const fault_policy& policy) {
  impl_->post({impl::control_message::kind::policy, policy, 0});
}

void nemesis::sever_all() {
  impl_->post({impl::control_message::kind::sever_all, {}, 0});
}

nemesis_stats nemesis::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->stats_mutex_);
  return impl_->stats_;
}

void nemesis::stop() { impl_->stop(); }

}  // namespace elect::chaos
