// elect::chaos::history — what each chaos worker testifies to.
//
// Every lease operation a worker performs (and every watch event it
// receives) becomes one record with start/end timestamps on the *runner
// process's* steady clock. All workers are threads of that one process,
// so cross-history real-time ordering is sound: if record A's end_us
// precedes record B's start_us, A really completed before B began —
// the foundation of the checker's real-time rules.
//
// Client histories are the authoritative evidence. The server's journal
// and command log are only trusted as per-incarnation *prefixes* (a
// kill -9 loses whatever the flusher had buffered), but a worker that
// won epoch e holds that fact in its own memory across any number of
// server crashes — which is exactly the witness needed to catch a
// restore fence that re-grants a pre-crash epoch.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace elect::chaos {

enum class op_kind : std::uint8_t {
  acquire = 0,
  release = 1,
  renew = 2,
  /// A watch callback firing; start_us == end_us == arrival time.
  watch_event = 3,
};

/// Operation outcome, flattening acquire_result and lease_status into
/// one axis (ok means "won" for acquire, "accepted" for release/renew).
enum class outcome : std::uint8_t {
  ok = 0,
  lost = 1,
  timed_out = 2,
  rejected = 3,
  connection_lost = 4,
  stale_epoch = 5,
  not_leader = 6,
};

[[nodiscard]] std::string_view to_string(op_kind k);
[[nodiscard]] std::string_view to_string(outcome o);

struct record {
  /// Microseconds since the runner's epoch (one shared steady clock).
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  /// Worker index (checker identity; a worker may reconnect through
  /// many net::client instances and stays the same witness).
  int worker = -1;
  op_kind op = op_kind::acquire;
  outcome result = outcome::ok;
  std::string key;
  /// acquire ok: the granted epoch. release/renew: the fencing token
  /// presented. watch_event: the transition's epoch.
  std::uint64_t epoch = 0;
  /// watch_event only: the svc::transition value
  /// (elected/released/expired/force_released).
  std::uint8_t transition = 0;
  /// watch_event only: the svc session id the event names (-1 = none).
  std::int64_t session = -1;
};

/// One JSONL line per record (artifact format, human-greppable).
[[nodiscard]] std::string to_jsonl(const std::vector<record>& records);

/// Thread-safe record sink shared by every worker in a run.
class collector {
 public:
  void add(record r) {
    const std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(std::move(r));
  }

  /// Steal the records (sorted by start_us) — call once, after the
  /// workers joined.
  [[nodiscard]] std::vector<record> take();

 private:
  std::mutex mutex_;
  std::vector<record> records_;
};

}  // namespace elect::chaos
