// elect::chaos::checker — validates a chaos run's merged histories
// against the service's safety contract.
//
// Evidence model. Client histories (chaos::record) are authoritative:
// every worker is a thread of the runner process, all records carry the
// runner's one steady clock, and a worker's memory of "I won epoch e"
// survives any number of server crashes. The server's event journal is
// supplementary evidence, trusted only as a per-*incarnation* prefix —
// a kill -9 loses whatever the journal flusher had buffered, so the
// absence of a journal line proves nothing, but a present line is a
// fact the server itself asserted.
//
// Rules:
//   R1 unique-holder  — for each (key, epoch), at most one distinct
//      winner across all acquire-ok records, journal elected lines,
//      and watch elected events.
//   R2 epoch-monotonic — journal elected epochs per key strictly
//      increase within an incarnation, and every incarnation's first
//      elected epoch on a key exceeds every epoch any earlier
//      incarnation's journal granted on it (a restore fence that
//      re-grants the crash gap fails here).
//   R3 real-time      — a grant of epoch e that *started* after a
//      grant of e' >= e *completed* (any workers) means the key's
//      epoch went backward in real time. This is the client-side net
//      for the fence_bump=1 bug: the pre-crash winner's completed
//      grant is the witness against the post-restore re-grant.
//   R4 zombie-fenced  — once a worker observed its (key, epoch) end
//      (own release-ok, or a stale_epoch/not_leader answer on it),
//      any later ok on the same (key, epoch) is an unfenced zombie op.
//   R5 watch-order    — per (worker, key), elected epochs arrive
//      non-decreasing; equal epochs are allowed only as consecutive
//      duplicates (nemesis duplication), not after an intervening
//      higher epoch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/history.hpp"

namespace elect::chaos {

/// One journal "elected" assertion from a server incarnation.
struct journal_grant {
  std::string key;
  std::uint64_t epoch = 0;
  std::int64_t holder = -1;
};

/// A server incarnation's journal evidence, in journal (= seq) order.
struct incarnation_evidence {
  std::vector<journal_grant> grants;
};

/// Parse elected lines out of one incarnation's event-journal JSONL
/// (obs::journal format). Lines of other kinds, or malformed lines
/// (a kill -9 can truncate the final line mid-write), are skipped.
[[nodiscard]] incarnation_evidence parse_journal(const std::string& jsonl);

struct violation {
  std::string rule;    // "R1".."R5"
  std::string detail;  // human-readable, includes key/epoch/witnesses
};

struct report {
  std::vector<violation> violations;
  // Coverage counters, so a "pass" on a run where nothing happened is
  // visibly vacuous.
  std::uint64_t records = 0;
  std::uint64_t grants = 0;
  std::uint64_t watch_events = 0;
  std::uint64_t journal_grants = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Check merged histories (sorted by start_us — collector::take()'s
/// output) plus per-incarnation journal evidence in incarnation order.
[[nodiscard]] report check(const std::vector<record>& records,
                           const std::vector<incarnation_evidence>& journals);

}  // namespace elect::chaos
