// elect::chaos::nemesis — a fault-injecting TCP relay between clients
// and a live elect_server.
//
// Clients connect to the nemesis' listen port; each accepted connection
// gets its own upstream connection to the real server, and the nemesis
// relays bytes both ways — but at *frame* granularity: each direction
// runs a wire::frame_reader, and faults are rolled per complete frame
// from a PRNG stream derived off (seed, pair index, direction). Whole
// frames are dropped, duplicated, delayed (unequal delays reorder),
// byte-dribbled, or the pair is severed outright; a partition mask cuts
// whole client groups. Partial frames are never interleaved: once a
// dribble starts on a direction, later frames queue behind it.
//
// Drops and the synchronous client: net::client blocks each caller
// until its response arrives, so a silently dropped frame would wedge
// the caller forever. The nemesis therefore *taints* a pair on every
// drop and severs all tainted pairs at the next set_policy() (phase
// boundary) — the blocked caller then sees connection_lost and the
// worker recovers, which is exactly the crash semantics the service
// already promises.
//
// Single-threaded: one epoll loop owns every socket; control calls
// (set_policy, sever_all, stop) post to it via an eventfd.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "chaos/schedule.hpp"

namespace elect::chaos {

struct nemesis_config {
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  /// 0 = ephemeral; port() reports the bound port either way.
  std::uint16_t listen_port = 0;
  std::uint64_t seed = 1;
};

struct nemesis_stats {
  std::uint64_t pairs_accepted = 0;
  std::uint64_t pairs_severed = 0;
  std::uint64_t taint_severs = 0;
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_delayed = 0;
  std::uint64_t frames_dribbled = 0;
};

class nemesis {
 public:
  explicit nemesis(nemesis_config config);
  ~nemesis();

  nemesis(const nemesis&) = delete;
  nemesis& operator=(const nemesis&) = delete;

  /// False when the listen socket could not be bound.
  [[nodiscard]] bool running() const;
  [[nodiscard]] std::uint16_t port() const;

  /// Swap the active fault policy (a phase boundary). Also severs
  /// every tainted pair — see the header comment. Synchronous: the
  /// loop has applied the policy before this returns.
  void set_policy(const fault_policy& policy);

  /// Sever every pair (used around a server kill/restart so clients
  /// re-anchor against the new incarnation promptly).
  void sever_all();

  [[nodiscard]] nemesis_stats stats() const;

  /// Stop the loop and close everything. Idempotent; the destructor
  /// calls it.
  void stop();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace elect::chaos
