#include "chaos/history.hpp"

#include <algorithm>

namespace elect::chaos {

std::string_view to_string(op_kind k) {
  switch (k) {
    case op_kind::acquire: return "acquire";
    case op_kind::release: return "release";
    case op_kind::renew: return "renew";
    case op_kind::watch_event: return "watch_event";
  }
  return "unknown";
}

std::string_view to_string(outcome o) {
  switch (o) {
    case outcome::ok: return "ok";
    case outcome::lost: return "lost";
    case outcome::timed_out: return "timed_out";
    case outcome::rejected: return "rejected";
    case outcome::connection_lost: return "connection_lost";
    case outcome::stale_epoch: return "stale_epoch";
    case outcome::not_leader: return "not_leader";
  }
  return "unknown";
}

std::string to_jsonl(const std::vector<record>& records) {
  std::string out;
  out.reserve(records.size() * 96);
  for (const record& r : records) {
    out += "{\"start_us\":" + std::to_string(r.start_us) +
           ",\"end_us\":" + std::to_string(r.end_us) +
           ",\"worker\":" + std::to_string(r.worker) + ",\"op\":\"" +
           std::string(to_string(r.op)) + "\",\"result\":\"" +
           std::string(to_string(r.result)) + "\",\"key\":\"" + r.key +
           "\",\"epoch\":" + std::to_string(r.epoch);
    if (r.op == op_kind::watch_event) {
      out += ",\"transition\":" + std::to_string(r.transition) +
             ",\"session\":" + std::to_string(r.session);
    }
    out += "}\n";
  }
  return out;
}

std::vector<record> collector::take() {
  std::vector<record> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.swap(records_);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const record& a, const record& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

}  // namespace elect::chaos
