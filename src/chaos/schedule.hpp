// elect::chaos::schedule — the seeded fault plan a chaos run executes.
//
// A *plan* is a sequence of *phases*; each phase holds a fault_policy
// (the fault mix the nemesis proxy applies to every relayed frame while
// the phase is active) and optionally starts by kill -9'ing the server
// and restarting it from its snapshot. The whole plan is a pure
// function of the seed — make_plan(seed) is deterministic — and the
// per-frame dice inside the nemesis derive from the same seed, so one
// integer names an entire adversary.
//
// Reproducibility is the point: every run records its plan to a trace
// file (a simple line format, parse_trace is the inverse of to_trace),
// and `elect_chaos --replay trace` re-executes exactly the phases a
// failing run executed, even across binary changes that would alter
// what make_plan derives from the seed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace elect::chaos {

/// The fault mix applied to relayed frames while a phase is active.
/// Probabilities are per frame, rolled independently per connection
/// direction from a stream derived off the run seed.
struct fault_policy {
  /// P(frame silently discarded). A drop *taints* the connection pair:
  /// a synchronous caller is now waiting for a reply that will never
  /// come, so the nemesis severs every tainted pair at the next phase
  /// boundary — the client sees connection_lost and recovers, rather
  /// than wedging forever.
  double drop = 0.0;
  /// P(frame forwarded twice). Exercises at-least-once delivery of
  /// watch events (request/response frames are idempotent at the
  /// protocol layer only for reads; duplicated requests get duplicated
  /// responses with the same id, which the client tolerates).
  double duplicate = 0.0;
  /// P(frame held back delay_min_ms..delay_max_ms before forwarding).
  /// Unequal delays on consecutive frames reorder them.
  double delay = 0.0;
  std::uint32_t delay_min_ms = 0;
  std::uint32_t delay_max_ms = 0;
  /// P(frame written dribble_chunk bytes at a time, dribble_gap_ms
  /// apart). Exercises incremental deframing on both peers; later
  /// frames on the direction queue behind the dribble (partial frames
  /// must never interleave).
  double dribble = 0.0;
  std::uint32_t dribble_chunk = 3;
  std::uint32_t dribble_gap_ms = 2;
  /// P(the connection pair is killed outright on frame arrival) — the
  /// hard sever fault, distinct from drop's deferred taint-sever.
  double sever = 0.0;
  /// Bitmask over client groups (connection's accept index mod
  /// group_count): set bits are partitioned — every frame either way
  /// is dropped (and taints, so the heal at the phase boundary severs
  /// the survivors free).
  std::uint64_t partition_groups = 0;

  [[nodiscard]] bool quiet() const {
    return drop == 0.0 && duplicate == 0.0 && delay == 0.0 &&
           dribble == 0.0 && sever == 0.0 && partition_groups == 0;
  }
};

/// Client groups the partition mask ranges over.
inline constexpr int group_count = 4;

struct phase {
  std::string name;
  std::uint32_t duration_ms = 0;
  /// Kill -9 the server and restart it with --restore at phase start.
  bool kill_server = false;
  fault_policy policy;
};

struct plan {
  std::uint64_t seed = 0;
  std::vector<phase> phases;
};

/// Derive a run's plan from its seed: a shuffled mix of calm, flaky
/// (drop/dup/delay/dribble), partition, sever-storm, and kill phases,
/// always opening and closing calm so workers can connect and drain.
/// `phase_ms` scales every phase; `smoke` trims the phase list for a
/// seconds-long CI budget.
[[nodiscard]] plan make_plan(std::uint64_t seed, std::uint32_t phase_ms,
                             bool smoke);

/// Serialize a plan to the trace format (one `phase` line per phase;
/// stable across versions — parse_trace rejects unknown trace
/// versions rather than guessing).
[[nodiscard]] std::string to_trace(const plan& p);

/// Parse a trace produced by to_trace. Empty on malformed input.
[[nodiscard]] std::optional<plan> parse_trace(const std::string& text);

}  // namespace elect::chaos
