#include "sim/kernel.hpp"

#include <utility>

namespace elect::sim {

namespace {

constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t x) noexcept {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

}  // namespace

kernel::kernel(const kernel_config& config, adversary& adversary)
    : config_(config),
      adversary_(adversary),
      metrics_(config.n),
      adv_rng_(config.seed, {0xadfULL}),
      crash_budget_(config.crash_budget >= 0 ? config.crash_budget
                                             : max_crash_faults(config.n)),
      crashed_(static_cast<std::size_t>(config.n), false),
      by_from_(static_cast<std::size_t>(config.n)),
      by_to_(static_cast<std::size_t>(config.n)),
      steppable_pos_(static_cast<std::size_t>(config.n), -1),
      invoke_event_(static_cast<std::size_t>(config.n), UINT64_MAX),
      return_event_(static_cast<std::size_t>(config.n), UINT64_MAX) {
  ELECT_CHECK(config.n >= 1);
  ELECT_CHECK_MSG(crash_budget_ <= max_crash_faults(config.n),
                  "crash budget exceeds the model bound ceil(n/2)-1");
  nodes_.reserve(static_cast<std::size_t>(config.n));
  for (process_id pid = 0; pid < config.n; ++pid) {
    nodes_.push_back(std::make_unique<engine::node>(
        pid, config.n, *this,
        rng_stream(config.seed, {0x40deULL, static_cast<std::uint64_t>(pid)}),
        metrics_));
  }
}

engine::node& kernel::node_at(process_id pid) {
  ELECT_CHECK(pid >= 0 && pid < config_.n);
  return *nodes_[static_cast<std::size_t>(pid)];
}

const engine::node& kernel::node_at(process_id pid) const {
  ELECT_CHECK(pid >= 0 && pid < config_.n);
  return *nodes_[static_cast<std::size_t>(pid)];
}

void kernel::attach(process_id pid, engine::task<std::int64_t> protocol) {
  node_at(pid).attach_protocol(std::move(protocol));
  participants_.push_back(pid);
  refresh_steppable(pid);
}

const indexed_id_set& kernel::in_flight_from(process_id pid) const {
  ELECT_CHECK(pid >= 0 && pid < config_.n);
  return by_from_[static_cast<std::size_t>(pid)];
}

const indexed_id_set& kernel::in_flight_to(process_id pid) const {
  ELECT_CHECK(pid >= 0 && pid < config_.n);
  return by_to_[static_cast<std::size_t>(pid)];
}

const engine::message& kernel::message_for(std::uint64_t id) const {
  const auto it = messages_.find(id);
  ELECT_CHECK_MSG(it != messages_.end(), "unknown message id");
  return it->second;
}

bool kernel::crashed(process_id pid) const {
  ELECT_CHECK(pid >= 0 && pid < config_.n);
  return crashed_[static_cast<std::size_t>(pid)];
}

void kernel::send(engine::message m) {
  ELECT_CHECK(m.from >= 0 && m.from < config_.n);
  ELECT_CHECK(m.to >= 0 && m.to < config_.n);
  if (std::holds_alternative<engine::ack_reply>(m.body)) {
    metrics_.acks_sent++;
  } else if (std::holds_alternative<engine::collect_reply>(m.body)) {
    metrics_.collect_replies_sent++;
  } else {
    metrics_.requests_sent++;
  }
  metrics_.wire_bytes += m.wire_bytes();
  const std::uint64_t id = next_message_id_++;
  live_.insert(id);
  by_from_[static_cast<std::size_t>(m.from)].insert(id);
  by_to_[static_cast<std::size_t>(m.to)].insert(id);
  messages_.emplace(id, std::move(m));
}

void kernel::remove_in_flight(std::uint64_t id) {
  const auto it = messages_.find(id);
  ELECT_CHECK_MSG(it != messages_.end(), "message not in flight");
  live_.erase(id);
  by_from_[static_cast<std::size_t>(it->second.from)].erase(id);
  by_to_[static_cast<std::size_t>(it->second.to)].erase(id);
}

void kernel::refresh_steppable(process_id pid) {
  const auto index = static_cast<std::size_t>(pid);
  const bool should =
      !crashed_[index] && nodes_[index]->can_step();
  const bool present = steppable_pos_[index] >= 0;
  if (should && !present) {
    steppable_pos_[index] = static_cast<std::int32_t>(steppable_.size());
    steppable_.push_back(pid);
  } else if (!should && present) {
    const auto pos = static_cast<std::size_t>(steppable_pos_[index]);
    const process_id last = steppable_.back();
    steppable_[pos] = last;
    steppable_pos_[static_cast<std::size_t>(last)] =
        static_cast<std::int32_t>(pos);
    steppable_.pop_back();
    steppable_pos_[index] = -1;
  }
}

void kernel::execute(const action& a) {
  switch (a.kind) {
    case action_kind::deliver: {
      ELECT_CHECK_MSG(live_.contains(a.message_id),
                      "deliver: message not in flight");
      auto it = messages_.find(a.message_id);
      engine::message m = std::move(it->second);
      remove_in_flight(a.message_id);
      messages_.erase(it);
      metrics_.deliveries++;
      const process_id to = m.to;
      node_at(to).deliver(std::move(m));
      if (!crashed_[static_cast<std::size_t>(to)]) refresh_steppable(to);
      trace_hash_ = mix(trace_hash_, 0x01);
      trace_hash_ = mix(trace_hash_, a.message_id);
      break;
    }
    case action_kind::step: {
      ELECT_CHECK_MSG(!crashed(a.pid), "step: processor crashed");
      engine::node& node = node_at(a.pid);
      ELECT_CHECK_MSG(node.can_step(), "step: nothing to do");
      const bool was_started = node.protocol_started();
      const bool was_done = node.protocol_attached() && node.protocol_done();
      node.computation_step();
      const auto index = static_cast<std::size_t>(a.pid);
      if (!was_started && node.protocol_started()) {
        invoke_event_[index] = events_;
      }
      if (node.protocol_attached() && !was_done && node.protocol_done()) {
        return_event_[index] = events_;
      }
      refresh_steppable(a.pid);
      trace_hash_ = mix(trace_hash_, 0x02);
      trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(a.pid));
      break;
    }
    case action_kind::crash: {
      ELECT_CHECK_MSG(!crashed(a.pid), "crash: already crashed");
      ELECT_CHECK_MSG(can_crash(), "crash: budget exhausted");
      crashed_[static_cast<std::size_t>(a.pid)] = true;
      crashes_used_++;
      refresh_steppable(a.pid);
      trace_hash_ = mix(trace_hash_, 0x03);
      trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(a.pid));
      break;
    }
    case action_kind::drop: {
      ELECT_CHECK_MSG(live_.contains(a.message_id),
                      "drop: message not in flight");
      const engine::message& m = message_for(a.message_id);
      ELECT_CHECK_MSG(crashed(m.from),
                      "drop: only messages from crashed senders may drop");
      remove_in_flight(a.message_id);
      messages_.erase(a.message_id);
      metrics_.dropped_messages++;
      trace_hash_ = mix(trace_hash_, 0x04);
      trace_hash_ = mix(trace_hash_, a.message_id);
      break;
    }
  }
  events_++;
}

bool kernel::finished() const {
  for (process_id pid : participants_) {
    if (crashed(pid)) continue;
    if (!node_at(pid).protocol_done()) return false;
  }
  return true;
}

bool kernel::anything_enabled() const {
  return !live_.empty() || !steppable_.empty();
}

kernel::run_result kernel::run() {
  run_result result;
  while (!finished()) {
    if (events_ >= config_.max_events) {
      result.events = events_;
      result.completed = false;
      return result;
    }
    if (!anything_enabled()) {
      // Only held protocol invocations can cause this; give the adversary
      // a chance to release them.
      ELECT_CHECK_MSG(adversary_.on_stalled(*this),
                      "simulation stalled: no enabled action but "
                      "participants have not finished");
      ELECT_CHECK_MSG(anything_enabled(),
                      "adversary reported progress on stall but nothing "
                      "is enabled");
      continue;
    }
    const action a = adversary_.pick(*this);
    execute(a);
  }
  result.events = events_;
  result.completed = true;
  return result;
}

}  // namespace elect::sim
