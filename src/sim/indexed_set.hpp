// A set of uint64 ids supporting O(1) insert, erase, membership and
// uniform random sampling, with deterministic iteration order (insertion
// order disturbed only by swap-remove). Used by the kernel to track
// in-flight messages so adversaries can sample them without scanning.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace elect::sim {

class indexed_id_set {
 public:
  void insert(std::uint64_t id) {
    ELECT_CHECK(!contains(id));
    positions_[id] = ids_.size();
    ids_.push_back(id);
  }

  void erase(std::uint64_t id) {
    const auto it = positions_.find(id);
    ELECT_CHECK(it != positions_.end());
    const std::size_t pos = it->second;
    const std::uint64_t last = ids_.back();
    ids_[pos] = last;
    positions_[last] = pos;
    ids_.pop_back();
    positions_.erase(it);
  }

  [[nodiscard]] bool contains(std::uint64_t id) const {
    return positions_.find(id) != positions_.end();
  }

  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }

  /// Uniformly random element. Requires non-empty.
  [[nodiscard]] std::uint64_t sample(rng_stream& rng) const {
    ELECT_CHECK(!ids_.empty());
    return ids_[rng.below(ids_.size())];
  }

  /// All ids, in deterministic (but unspecified) order.
  [[nodiscard]] const std::vector<std::uint64_t>& ids() const noexcept {
    return ids_;
  }

 private:
  std::vector<std::uint64_t> ids_;
  std::unordered_map<std::uint64_t, std::size_t> positions_;
};

}  // namespace elect::sim
