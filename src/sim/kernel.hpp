// Deterministic discrete-event simulator of the asynchronous
// message-passing model (§2) under a strong adaptive adversary.
//
// The kernel owns n nodes and the set of in-flight messages. Execution is
// a sequence of *events*; before each event the kernel asks the adversary
// to pick one from the enabled set:
//
//   * deliver(msg)  — move an in-flight message into its target's mailbox
//                     (the model's delivery step; allowed even if the
//                     target has crashed — crashed processors still
//                     receive, they just never act);
//   * step(p)       — run processor p's computation step (receive all
//                     delivered mail, serve requests, advance protocol);
//                     enabled iff p is alive and has work;
//   * crash(p)      — crash p (budget: t <= ceil(n/2)-1);
//   * drop(msg)     — destroy an in-flight message whose *sender* has
//                     crashed (the model permits dropping messages of
//                     faulty processors only).
//
// The adversary sees everything: message contents, node stores, debug
// probes (coin flips). Given the same (config, adversary) pair, a run is
// bit-for-bit reproducible; the kernel maintains a trace hash so tests can
// assert determinism.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "engine/message.hpp"
#include "engine/metrics.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"
#include "sim/indexed_set.hpp"

namespace elect::sim {

class adversary;

enum class action_kind : std::uint8_t { deliver, step, crash, drop };

/// One scheduling decision.
struct action {
  action_kind kind{};
  std::uint64_t message_id = 0;  ///< deliver / drop
  process_id pid = no_process;   ///< step / crash

  [[nodiscard]] static action deliver(std::uint64_t id) {
    return {action_kind::deliver, id, no_process};
  }
  [[nodiscard]] static action step(process_id pid) {
    return {action_kind::step, 0, pid};
  }
  [[nodiscard]] static action crash(process_id pid) {
    return {action_kind::crash, 0, pid};
  }
  [[nodiscard]] static action drop(std::uint64_t id) {
    return {action_kind::drop, id, no_process};
  }
};

struct kernel_config {
  int n = 0;
  std::uint64_t seed = 1;
  /// Crash budget; -1 means the model maximum ceil(n/2)-1.
  int crash_budget = -1;
  /// Safety valve: abort the run after this many events (a correct
  /// adversary/protocol pair terminates far earlier).
  std::uint64_t max_events = 200'000'000;
};

class kernel final : public engine::transport {
 public:
  kernel(const kernel_config& config, adversary& adversary);

  kernel(const kernel&) = delete;
  kernel& operator=(const kernel&) = delete;

  // --- setup ---------------------------------------------------------

  /// Attach a protocol to processor `pid` (making it a participant).
  void attach(process_id pid, engine::task<std::int64_t> protocol);

  /// Hold back / release the invocation of pid's protocol (the processor
  /// keeps serving requests while held). Used by adversaries that control
  /// invocation order (sequential, laggard).
  void hold_protocol(process_id pid, bool held) {
    node_at(pid).set_held(held);
    if (!crashed(pid)) refresh_steppable(pid);
  }

  // --- execution -----------------------------------------------------

  struct run_result {
    bool completed = false;     ///< all participants returned or crashed
    std::uint64_t events = 0;   ///< events executed
  };

  /// Run until every participant's protocol returned (or the participant
  /// crashed), or until max_events.
  run_result run();

  /// Execute one action (exposed for fine-grained tests and for
  /// hand-written schedules). Aborts on an illegal action.
  void execute(const action& a);

  [[nodiscard]] bool finished() const;
  [[nodiscard]] bool anything_enabled() const;

  // --- adversary / instrumentation view ------------------------------

  [[nodiscard]] int n() const noexcept { return config_.n; }
  [[nodiscard]] engine::node& node_at(process_id pid);
  [[nodiscard]] const engine::node& node_at(process_id pid) const;

  [[nodiscard]] const indexed_id_set& in_flight() const noexcept {
    return live_;
  }
  [[nodiscard]] const indexed_id_set& in_flight_from(process_id pid) const;
  [[nodiscard]] const indexed_id_set& in_flight_to(process_id pid) const;
  [[nodiscard]] const engine::message& message_for(std::uint64_t id) const;

  /// Alive processors for which step() is currently enabled.
  [[nodiscard]] const std::vector<process_id>& steppable() const noexcept {
    return steppable_;
  }

  [[nodiscard]] bool crashed(process_id pid) const;
  [[nodiscard]] int crashes_used() const noexcept { return crashes_used_; }
  [[nodiscard]] int crash_budget() const noexcept { return crash_budget_; }
  [[nodiscard]] bool can_crash() const noexcept {
    return crashes_used_ < crash_budget_;
  }

  [[nodiscard]] const std::vector<process_id>& participants() const noexcept {
    return participants_;
  }

  /// RNG stream reserved for the adversary's own decisions.
  [[nodiscard]] rng_stream& adversary_rng() noexcept { return adv_rng_; }

  [[nodiscard]] engine::metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const engine::metrics& metrics() const noexcept {
    return metrics_;
  }

  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t trace_hash() const noexcept {
    return trace_hash_;
  }

  // --- engine::transport ---------------------------------------------

  void send(engine::message m) override;

  /// Protocol result of a finished participant.
  [[nodiscard]] std::int64_t result_of(process_id pid) const {
    return node_at(pid).protocol_result();
  }

  /// Event index at which pid's protocol was invoked (first resumed), or
  /// UINT64_MAX if it never started. Used by the linearizability checker.
  [[nodiscard]] std::uint64_t invoke_event(process_id pid) const {
    return invoke_event_[static_cast<std::size_t>(pid)];
  }

  /// Event index at which pid's protocol returned, or UINT64_MAX.
  [[nodiscard]] std::uint64_t return_event(process_id pid) const {
    return return_event_[static_cast<std::size_t>(pid)];
  }

 private:
  void refresh_steppable(process_id pid);
  void remove_in_flight(std::uint64_t id);

  kernel_config config_;
  adversary& adversary_;
  engine::metrics metrics_;
  rng_stream adv_rng_;
  int crash_budget_;
  int crashes_used_ = 0;

  std::vector<std::unique_ptr<engine::node>> nodes_;
  std::vector<bool> crashed_;
  std::vector<process_id> participants_;

  std::unordered_map<std::uint64_t, engine::message> messages_;
  indexed_id_set live_;
  std::vector<indexed_id_set> by_from_;
  std::vector<indexed_id_set> by_to_;
  std::uint64_t next_message_id_ = 1;

  std::vector<process_id> steppable_;
  std::vector<std::int32_t> steppable_pos_;

  std::uint64_t events_ = 0;
  std::uint64_t trace_hash_ = 0x243f6a8885a308d3ULL;
  std::vector<std::uint64_t> invoke_event_;
  std::vector<std::uint64_t> return_event_;
};

/// A scheduling strategy. Implementations must always return a *legal*
/// enabled action (the kernel aborts otherwise) and must be fair enough
/// that participants eventually finish — within the model this is the
/// standard requirement that every message is eventually delivered and
/// every processor is eventually scheduled.
class adversary {
 public:
  virtual ~adversary() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Choose the next event. Called only when at least one deliver/step
  /// action is enabled.
  [[nodiscard]] virtual action pick(kernel& k) = 0;

  /// Called when no action is enabled but participants have not finished
  /// — which can only happen if the adversary is holding protocol
  /// invocations back (hold_protocol). Release something and return true
  /// to continue; returning false makes the kernel abort (a genuine
  /// stall would be a bug).
  [[nodiscard]] virtual bool on_stalled(kernel& k) {
    (void)k;
    return false;
  }
};

}  // namespace elect::sim
