#include "renaming/baseline_renaming.hpp"

#include <numeric>
#include <vector>

#include "election/leader_elect.hpp"

namespace elect::renaming {

using election::election_id;
using election::leader_elect;
using election::leader_elect_params;
using election::tas_result;

engine::task<std::int64_t> get_name_baseline(
    engine::node& self, baseline_renaming_params params) {
  const int name_count = params.name_count > 0 ? params.name_count : self.n();

  // Fisher-Yates with the node's deterministic stream: the random order
  // in which this processor will probe the names.
  std::vector<std::int64_t> order(static_cast<std::size_t>(name_count));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::uint64_t j = self.rng().below(i);
    std::swap(order[i - 1], order[j]);
  }

  self.probe().iterations = 0;
  for (const std::int64_t spot : order) {
    self.probe().contending_for = spot;
    const tas_result outcome = co_await leader_elect(
        self,
        leader_elect_params{election_id{
            params.space + 1 + static_cast<std::uint32_t>(spot)}});
    self.probe().iterations++;
    if (outcome == tas_result::win) co_return spot;
  }
  // n processors, n names, and a processor contends for each name at most
  // once: losing all n elections would mean n distinct other winners.
  ELECT_CHECK_MSG(false, "baseline renaming lost every name");
  co_return -1;  // unreachable
}

}  // namespace elect::renaming
