// Baseline renaming from [AAG+10] (paper §1, Related Work).
//
// "Each processor tries all the names, in random order, until acquiring
// some one." No contention bookkeeping at all: the processor fixes a
// uniformly random permutation of the names up front and competes for
// them one by one via leader election.
//
// Despite its similarity to Figure 3, this algorithm has expected Ω(n)
// time complexity: a late processor may have to try out a linear number
// of spots (each already taken) before succeeding. Experiment E6
// contrasts its per-processor iteration count with Figure 3's O(log² n).
#pragma once

#include <cstdint>

#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::renaming {

struct baseline_renaming_params {
  /// Base id for per-name election instances; must not overlap other
  /// instance ranges in the same system.
  std::uint32_t space = 1;
  /// Number of names; <= 0 means n.
  int name_count = -1;
};

/// Acquire a unique name in [0, name_count) by random-order probing.
[[nodiscard]] engine::task<std::int64_t> get_name_baseline(
    engine::node& self, baseline_renaming_params params);

}  // namespace elect::renaming
