// Strong (tight) renaming — Figure 3 of the paper.
//
// n processors acquire distinct names from {0, ..., n-1} (the paper
// writes [1..n]; we use 0-based spots). Each processor repeatedly:
//   1. collects the Contended[] bitmap from a quorum and merges what it
//      learns into its local view;
//   2. propagates its (updated) set of contended names;
//   3. picks a uniformly random name it still sees as uncontended, marks
//      it contended, and competes for it in that name's leader-election
//      instance (the full Figure-6 LeaderElect, doorway included);
//   4. propagates the contention mark, and returns the name iff it won.
//
// Guarantees (reproduced by tests/benches):
//   * Lemma A.6 — no two processors return the same name; termination
//     with probability 1;
//   * Theorem 4.2 — expected O(n²) total messages;
//   * Theorem A.13 — expected O(log² n) communicate calls per processor.
#pragma once

#include <cstdint>

#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::renaming {

struct renaming_params {
  /// Base id for per-name election instances and the Contended bitmap;
  /// distinct renaming instances (or co-resident standalone elections)
  /// must use disjoint ranges [space, space + name_count].
  std::uint32_t space = 1;
  /// Number of names; <= 0 means n.
  int name_count = -1;
  /// Safety valve on non-contending (spin) iterations; the algorithm
  /// aborts loudly if a processor ever sees every name contended without
  /// having won one (impossible in crash-free executions; reachable only
  /// through a corner of Lemma A.6 discussed in DESIGN.md).
  int max_spin_iterations = 1024;
};

/// Acquire a unique name in [0, name_count). Returns the name.
[[nodiscard]] engine::task<std::int64_t> get_name(engine::node& self,
                                                  renaming_params params);

}  // namespace elect::renaming
