#include "renaming/renaming.hpp"

#include <vector>

#include "election/leader_elect.hpp"
#include "election/vars.hpp"
#include "engine/views.hpp"

namespace elect::renaming {

using election::election_id;
using election::leader_elect;
using election::leader_elect_params;
using election::tas_result;
using engine::or_flags;

namespace {

engine::var_id contended_var(std::uint32_t space) {
  return {engine::var_family::contended, space, 0};
}

election_id name_election(std::uint32_t space, std::int64_t name) {
  // +1 keeps name elections clear of the bitmap's own instance id.
  return election_id{space + 1 + static_cast<std::uint32_t>(name)};
}

}  // namespace

engine::task<std::int64_t> get_name(engine::node& self,
                                    renaming_params params) {
  const int name_count = params.name_count > 0 ? params.name_count : self.n();
  const engine::var_id contended = contended_var(params.space);
  int spins = 0;
  self.probe().iterations = 0;

  while (true) {  // line 32
    // Line 33: collect contention information from a quorum.
    const auto views = co_await self.collect(contended);

    // Lines 34-36: fold every view into the local Contended[] bitmap.
    std::vector<bool> seen(static_cast<std::size_t>(name_count), false);
    engine::for_each_view<or_flags>(views, [&](const or_flags& flags) {
      for (int j = 0; j < flags.size() && j < name_count; ++j) {
        if (flags.test(j)) seen[static_cast<std::size_t>(j)] = true;
      }
    });
    std::vector<std::uint32_t> newly;
    for (int j = 0; j < name_count; ++j) {
      if (seen[static_cast<std::size_t>(j)]) {
        newly.push_back(static_cast<std::uint32_t>(j));
      }
    }
    if (!newly.empty()) self.stage_flags(contended, newly);

    // Line 37: propagate every name we now view as contended.
    const or_flags* local = self.local_store().view<or_flags>(contended);
    std::vector<std::uint32_t> known =
        local != nullptr ? local->set_indices() : std::vector<std::uint32_t>{};
    {
      auto delta = engine::var_delta{engine::flags_delta{known}};
      co_await self.propagate(contended, delta);
    }

    // Line 38: pick a uniformly random uncontended name in our view.
    std::vector<std::int64_t> free;
    free.reserve(static_cast<std::size_t>(name_count));
    {
      std::vector<bool> taken(static_cast<std::size_t>(name_count), false);
      for (const std::uint32_t j : known) {
        if (j < static_cast<std::uint32_t>(name_count)) {
          taken[j] = true;
        }
      }
      for (int j = 0; j < name_count; ++j) {
        if (!taken[static_cast<std::size_t>(j)]) free.push_back(j);
      }
    }
    if (free.empty()) {
      // Every name is contended in our view and we have won none. In a
      // crash-free execution this state is unreachable (see renaming.hpp);
      // spin so crash-injected executions keep serving, but abort loudly
      // rather than loop forever.
      ++spins;
      ELECT_CHECK_MSG(spins <= params.max_spin_iterations,
                      "renaming dead-end: all names contended, none won "
                      "(crash corner of Lemma A.6)");
      continue;
    }
    const std::int64_t spot =
        free[self.rng().below(free.size())];
    self.probe().contending_for = spot;

    // Line 39: mark the chosen name contended locally.
    self.stage_flags(contended, {static_cast<std::uint32_t>(spot)});

    // Line 40: compete for the name in its leader-election instance.
    const tas_result outcome = co_await leader_elect(
        self, leader_elect_params{name_election(params.space, spot)});

    // Line 41: propagate the contention mark.
    {
      auto delta = engine::var_delta{
          engine::flags_delta{{static_cast<std::uint32_t>(spot)}}};
      co_await self.propagate(contended, delta);
    }
    self.probe().iterations++;

    // Lines 42-43: win iff you are the leader.
    if (outcome == tas_result::win) co_return spot;
  }
}

}  // namespace elect::renaming
