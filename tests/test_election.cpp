// LeaderElect (Figure 6) property tests — the paper's main theorem A.5:
// unique winner, linearizability, termination under crashes, adaptivity,
// and the round-decay structure (Claim A.4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "adversary/basic.hpp"
#include "adversary/laggard.hpp"
#include "common/stats.hpp"
#include "election/history.hpp"
#include "election/leader_elect.hpp"
#include "engine/node.hpp"
#include "exp/harness.hpp"
#include "sim/kernel.hpp"

namespace elect {
namespace {

using election::tas_result;
using engine::erase_result;
using exp::algo;
using exp::run_trial;
using exp::trial_config;
using exp::trial_result;

constexpr std::int64_t win_value =
    static_cast<std::int64_t>(tas_result::win);

class ElectionSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(ElectionSweep, ExactlyOneWinnerWhenAllReturn) {
  const auto [n, adversary] = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    trial_config config;
    config.kind = algo::leader_elect;
    config.n = n;
    config.seed = seed;
    config.adversary = adversary;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed) << "n=" << n << " adv=" << adversary
                                  << " seed=" << seed;
    EXPECT_EQ(result.winners, 1)
        << "n=" << n << " adv=" << adversary << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ElectionSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 33),
                       ::testing::Values("uniform", "round-robin",
                                         "sequential", "flip-adaptive")),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

TEST(Election, AtMostOneWinnerUnderCrashes) {
  // With crashes, termination of non-faulty participants plus at-most-one
  // winner must hold; at-least-one cannot be demanded (the would-be
  // winner may crash).
  for (int n : {3, 5, 8, 13}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      trial_config config;
      config.kind = algo::leader_elect;
      config.n = n;
      config.seed = seed;
      config.adversary = "uniform";
      config.crashes = max_crash_faults(n);
      const trial_result result = run_trial(config);
      ASSERT_TRUE(result.completed) << "n=" << n << " seed=" << seed;
      EXPECT_LE(result.winners, 1) << "n=" << n << " seed=" << seed;
      // Every non-crashed participant returned (completed == true) —
      // termination with probability 1 under t <= ceil(n/2)-1 faults.
    }
  }
}

TEST(Election, HistoriesAreLinearizable) {
  // Build full op histories (invoke/return events from the kernel) and
  // run them through the checker.
  for (int n : {2, 4, 7, 12}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      adversary::uniform_random adv;
      sim::kernel k(sim::kernel_config{.n = n, .seed = seed}, adv);
      for (process_id pid = 0; pid < n; ++pid) {
        k.attach(pid, erase_result(election::leader_elect(k.node_at(pid))));
      }
      ASSERT_TRUE(k.run().completed);
      std::vector<election::tas_op> history;
      for (process_id pid = 0; pid < n; ++pid) {
        election::tas_op op;
        op.pid = pid;
        op.invoke_time = k.invoke_event(pid);
        op.return_time = k.return_event(pid);
        op.crashed = k.crashed(pid);
        if (!op.crashed && k.node_at(pid).protocol_done()) {
          op.outcome = static_cast<tas_result>(k.result_of(pid));
        }
        history.push_back(op);
      }
      const auto violation = election::validate_tas_history(history);
      EXPECT_FALSE(violation.has_value())
          << "n=" << n << " seed=" << seed << ": " << *violation;
    }
  }
}

TEST(Election, LateArrivalsLoseAtTheDoorway) {
  // Laggard schedule: half the participants are held until the others
  // have finished. By then the door is closed (the winner closed it), so
  // every released laggard must lose — and quickly (one collect).
  const int n = 8;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto base = std::make_unique<adversary::uniform_random>();
    adversary::laggard adv(std::move(base), {4, 5, 6, 7});
    sim::kernel k(sim::kernel_config{.n = n, .seed = seed}, adv);
    for (process_id pid = 0; pid < n; ++pid) {
      k.attach(pid, erase_result(election::leader_elect(k.node_at(pid))));
    }
    ASSERT_TRUE(k.run().completed);
    EXPECT_TRUE(adv.released());
    int winners = 0;
    for (process_id pid = 0; pid < n; ++pid) {
      if (k.result_of(pid) == win_value) ++winners;
      if (pid >= 4) {
        EXPECT_NE(k.result_of(pid), win_value)
            << "laggard " << pid << " won (seed " << seed << ")";
      }
    }
    EXPECT_EQ(winners, 1);
  }
}

TEST(Election, SoloParticipantWinsInTwoRounds) {
  // k=1: PreRound returns WIN in round 2 (R=0 < r-1=1).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    adversary::round_robin adv;
    sim::kernel k(sim::kernel_config{.n = 6, .seed = seed}, adv);
    k.attach(3, erase_result(election::leader_elect(k.node_at(3))));
    ASSERT_TRUE(k.run().completed);
    EXPECT_EQ(k.result_of(3), win_value);
    EXPECT_EQ(k.node_at(3).probe().round, 2);
  }
}

TEST(Election, AdaptivityCommunicateCallsTrackParticipants) {
  // Theorem A.5 adaptivity: time is O(log* k), not O(log* n). At a fixed
  // n, runs with k=2 should cost participants no more communicate calls
  // than runs with k=n (statistically).
  const int n = 24;
  const auto mean_calls = [&](int k) {
    double total = 0;
    const int trials = 10;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      trial_config config;
      config.kind = algo::leader_elect;
      config.n = n;
      config.participants = k;
      config.seed = seed;
      const trial_result result = run_trial(config);
      EXPECT_TRUE(result.completed);
      total += static_cast<double>(result.max_communicate_calls);
    }
    return total / trials;
  };
  EXPECT_LE(mean_calls(2), mean_calls(n) + 2.0);
}

TEST(Election, RoundsStayTiny) {
  // O(log* k) rounds: for n up to 33 the max round should be very small
  // (log*(33) = 3; allow generous slack for the +O(1) constant tail).
  for (int n : {4, 16, 33}) {
    sample_stats max_round;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      trial_config config;
      config.kind = algo::leader_elect;
      config.n = n;
      config.seed = seed;
      const trial_result result = run_trial(config);
      ASSERT_TRUE(result.completed);
      max_round.add(static_cast<double>(
          *std::max_element(result.rounds.begin(), result.rounds.end())));
    }
    EXPECT_LE(max_round.max(), 10.0) << "n=" << n;
    EXPECT_LE(max_round.mean(), 7.0) << "n=" << n;
  }
}

TEST(Election, ParticipantDecayPerRound) {
  // Claim A.4: the expected number of participants decays by a constant
  // factor every two rounds. Measure the count of participants that
  // reached round >= 2 versus round >= 4.
  const int n = 32;
  double reached_r2 = 0, reached_r4 = 0;
  const int trials = 15;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    trial_config config;
    config.kind = algo::leader_elect;
    config.n = n;
    config.seed = seed;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    for (const std::int64_t r : result.rounds) {
      reached_r2 += r >= 2 ? 1 : 0;
      reached_r4 += r >= 4 ? 1 : 0;
    }
  }
  // Everyone reaches round 1; far fewer reach round 2; fewer still round 4.
  EXPECT_LT(reached_r2 / trials, n / 2.0);
  EXPECT_LT(reached_r4, reached_r2);
}

TEST(Election, MessageComplexityLinearInParticipants) {
  // O(kn) messages: doubling k at fixed n should scale total messages
  // roughly linearly (generous factor for variance).
  const int n = 32;
  const auto mean_messages = [&](int k) {
    double total = 0;
    const int trials = 8;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      trial_config config;
      config.kind = algo::leader_elect;
      config.n = n;
      config.participants = k;
      config.seed = seed;
      const trial_result result = run_trial(config);
      EXPECT_TRUE(result.completed);
      total += static_cast<double>(result.total_messages);
    }
    return total / trials;
  };
  const double at_4 = mean_messages(4);
  const double at_32 = mean_messages(32);
  EXPECT_GT(at_32, at_4);              // more participants, more messages
  EXPECT_LT(at_32, at_4 * 8.0 * 4.0);  // but not super-linearly (slack 4x)
}

TEST(Election, DistinctInstancesAreIndependent) {
  // Two concurrent elections on disjoint instances: each elects exactly
  // one winner, and a processor can win one while losing the other.
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 6, .seed = 5}, adv);
  // Even pids run instance 1, odd pids run instance 2.
  for (process_id pid = 0; pid < 6; ++pid) {
    election::leader_elect_params params;
    params.instance = election::election_id{
        static_cast<std::uint32_t>(1 + (pid % 2))};
    k.attach(pid,
             erase_result(election::leader_elect(k.node_at(pid), params)));
  }
  ASSERT_TRUE(k.run().completed);
  int winners_even = 0, winners_odd = 0;
  for (process_id pid = 0; pid < 6; ++pid) {
    if (k.result_of(pid) == win_value) {
      (pid % 2 == 0 ? winners_even : winners_odd)++;
    }
  }
  EXPECT_EQ(winners_even, 1);
  EXPECT_EQ(winners_odd, 1);
}

TEST(Election, DeterministicGivenSeed) {
  const auto run_once = [](std::uint64_t seed) {
    trial_config config;
    config.kind = algo::leader_elect;
    config.n = 9;
    config.seed = seed;
    return run_trial(config);
  };
  const trial_result a = run_once(123);
  const trial_result b = run_once(123);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.total_messages, b.total_messages);
  const trial_result c = run_once(124);
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

}  // namespace
}  // namespace elect
