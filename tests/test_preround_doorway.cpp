// Controlled-schedule unit tests for the PreRound filter (Figure 4) and
// the Doorway (Figure 5), driven step by step through the kernel so each
// branch of the pseudocode is pinned down individually.
#include <gtest/gtest.h>

#include "adversary/basic.hpp"
#include "election/doorway.hpp"
#include "election/preround.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "sim/kernel.hpp"

namespace elect {
namespace {

using election::election_id;
using election::gate_result;

engine::task<std::int64_t> run_preround(engine::node& self,
                                        engine::var_id var, std::int64_t r) {
  co_return static_cast<std::int64_t>(co_await election::preround(self, var, r));
}

engine::task<std::int64_t> run_doorway(engine::node& self,
                                       engine::var_id var) {
  co_return static_cast<std::int64_t>(co_await election::doorway(self, var));
}

void run_to_completion(sim::kernel& k, process_id pid) {
  while (!k.node_at(pid).protocol_done()) {
    ASSERT_TRUE(k.anything_enabled());
    if (!k.steppable().empty()) {
      k.execute(sim::action::step(k.steppable().front()));
    } else {
      k.execute(sim::action::deliver(k.in_flight().ids().front()));
    }
  }
}

TEST(PreRound, FirstProcessorProceeds) {
  // Nobody else has written a round: R = 0, r = 1 → PROCEED.
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 1}, adv);
  const auto var = election::round_var(election_id{1});
  k.attach(0, run_preround(k.node_at(0), var, 1));
  ASSERT_TRUE(k.run().completed);
  EXPECT_EQ(k.result_of(0), static_cast<std::int64_t>(gate_result::proceed));
}

TEST(PreRound, TwoRoundLeadWins) {
  // Processor 0 reaches round 3 while everyone else is still at 1:
  // R = 1 < r - 1 = 2 → WIN.
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 2}, adv);
  const auto var = election::round_var(election_id{1});
  k.attach(1, run_preround(k.node_at(1), var, 1));
  run_to_completion(k, 1);
  k.attach(0, run_preround(k.node_at(0), var, 3));
  run_to_completion(k, 0);
  EXPECT_EQ(k.result_of(0), static_cast<std::int64_t>(gate_result::win));
}

TEST(PreRound, BehindLoses) {
  // Processor 0 announces round 5; processor 1 then enters round 3:
  // r = 3 < R = 5 → LOSE.
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 3}, adv);
  const auto var = election::round_var(election_id{1});
  k.attach(0, run_preround(k.node_at(0), var, 5));
  run_to_completion(k, 0);
  k.attach(1, run_preround(k.node_at(1), var, 3));
  run_to_completion(k, 1);
  EXPECT_EQ(k.result_of(1), static_cast<std::int64_t>(gate_result::lose));
}

TEST(PreRound, OneRoundLeadOnlyProceeds) {
  // R = r - 1 exactly: neither win nor lose.
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 4}, adv);
  const auto var = election::round_var(election_id{1});
  k.attach(0, run_preround(k.node_at(0), var, 2));
  run_to_completion(k, 0);
  k.attach(1, run_preround(k.node_at(1), var, 3));
  run_to_completion(k, 1);
  EXPECT_EQ(k.result_of(1), static_cast<std::int64_t>(gate_result::proceed));
}

TEST(PreRound, OwnRoundDoesNotCount) {
  // R is the max over *other* processors: a processor's own round never
  // makes it lose. Enter round 1 twice in a row (re-announce).
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 3, .seed = 5}, adv);
  const auto var = election::round_var(election_id{1});
  k.attach(0, run_preround(k.node_at(0), var, 1));
  run_to_completion(k, 0);
  k.attach(1, run_preround(k.node_at(1), var, 1));
  run_to_completion(k, 1);
  // Both at round 1: R = 1 = r → proceed (not lose).
  EXPECT_EQ(k.result_of(1), static_cast<std::int64_t>(gate_result::proceed));
}

TEST(Doorway, FirstThroughProceedsAndCloses) {
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 6}, adv);
  const auto var = election::door_var(election_id{1});
  k.attach(0, run_doorway(k.node_at(0), var));
  run_to_completion(k, 0);
  EXPECT_EQ(k.result_of(0), static_cast<std::int64_t>(gate_result::proceed));
  // The closure reached a quorum: a later arrival must lose.
  k.attach(1, run_doorway(k.node_at(1), var));
  run_to_completion(k, 1);
  EXPECT_EQ(k.result_of(1), static_cast<std::int64_t>(gate_result::lose));
}

TEST(Doorway, ConcurrentEntrantsMayBothProceed) {
  // Two processors that both collect before either propagates the closed
  // door can both proceed — the doorway only filters *late* arrivals.
  // Under round-robin both run neck-and-neck; whatever happens, at least
  // one proceeds.
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 7}, adv);
  const auto var = election::door_var(election_id{1});
  k.attach(0, run_doorway(k.node_at(0), var));
  k.attach(1, run_doorway(k.node_at(1), var));
  ASSERT_TRUE(k.run().completed);
  const int proceeds =
      (k.result_of(0) == static_cast<std::int64_t>(gate_result::proceed)) +
      (k.result_of(1) == static_cast<std::int64_t>(gate_result::proceed));
  EXPECT_GE(proceeds, 1);
}

TEST(Doorway, DistinctInstancesIndependent) {
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 8}, adv);
  k.attach(0, run_doorway(k.node_at(0), election::door_var(election_id{1})));
  run_to_completion(k, 0);
  // Door 1 is closed; door 2 is untouched.
  k.attach(1, run_doorway(k.node_at(1), election::door_var(election_id{2})));
  run_to_completion(k, 1);
  EXPECT_EQ(k.result_of(1), static_cast<std::int64_t>(gate_result::proceed));
}

}  // namespace
}  // namespace elect
