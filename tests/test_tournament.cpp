// Tournament baseline, quorum consensus, and ABD register tests.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <tuple>

#include "abd/register.hpp"
#include "adversary/basic.hpp"
#include "adversary/registry.hpp"
#include "consensus/quorum_consensus.hpp"
#include "election/tournament.hpp"
#include "engine/node.hpp"
#include "exp/harness.hpp"
#include "sim/kernel.hpp"

namespace elect {
namespace {

using election::tas_result;
using engine::erase_result;

constexpr std::int64_t win_value =
    static_cast<std::int64_t>(tas_result::win);

// ---------------------------------------------------------- consensus --

class ConsensusSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(ConsensusSweep, AgreementAndValidity) {
  const auto [proposers, adversary] = GetParam();
  const int n = 7;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto adv = adversary::make(adversary, n);
    sim::kernel k(sim::kernel_config{.n = n, .seed = seed}, *adv);
    for (process_id pid = 0; pid < proposers; ++pid) {
      k.attach(pid, consensus::decide(k.node_at(pid), /*space=*/1,
                                      /*proposal=*/pid * 10));
    }
    ASSERT_TRUE(k.run().completed) << "seed " << seed;
    std::set<std::int64_t> decisions;
    for (process_id pid = 0; pid < proposers; ++pid) {
      decisions.insert(k.result_of(pid));
    }
    // Agreement: one decided value.
    EXPECT_EQ(decisions.size(), 1u) << "seed " << seed;
    // Validity: it is one of the proposals.
    const std::int64_t decided = *decisions.begin();
    EXPECT_EQ(decided % 10, 0);
    EXPECT_GE(decided, 0);
    EXPECT_LT(decided, proposers * 10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Proposers, ConsensusSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values("uniform", "round-robin",
                                         "sequential")),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "p" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

TEST(Consensus, SoloDecidesOwnProposalFast) {
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 5, .seed = 2}, adv);
  k.attach(0, consensus::decide(k.node_at(0), 1, 42));
  ASSERT_TRUE(k.run().completed);
  EXPECT_EQ(k.result_of(0), 42);
  // Solo: round 1 decides — 4 communicate calls.
  EXPECT_EQ(k.metrics().communicate_calls[0], 4u);
}

TEST(Consensus, LatecomerAdoptsEarlierDecision) {
  // Processor 0 decides alone; then processor 1 proposes a different
  // value and must adopt 0's decision.
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 5, .seed = 3}, adv);
  k.attach(0, consensus::decide(k.node_at(0), 1, 7));
  k.attach(1, consensus::decide(k.node_at(1), 1, 9));
  k.hold_protocol(1, true);
  while (!k.node_at(0).protocol_done()) {
    ASSERT_TRUE(k.anything_enabled());
    if (!k.steppable().empty()) {
      k.execute(sim::action::step(k.steppable().front()));
    } else {
      k.execute(sim::action::deliver(k.in_flight().ids().front()));
    }
  }
  EXPECT_EQ(k.result_of(0), 7);
  k.hold_protocol(1, false);
  ASSERT_TRUE(k.run().completed);
  EXPECT_EQ(k.result_of(1), 7);  // agreement with the earlier decision
}

TEST(Consensus, AgreementUnderCrashes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto adv = adversary::make("crash-uniform", 9);
    sim::kernel k(sim::kernel_config{.n = 9, .seed = seed}, *adv);
    for (process_id pid = 0; pid < 4; ++pid) {
      k.attach(pid, consensus::decide(k.node_at(pid), 1, pid));
    }
    ASSERT_TRUE(k.run().completed);
    std::set<std::int64_t> decisions;
    for (process_id pid = 0; pid < 4; ++pid) {
      if (!k.crashed(pid)) decisions.insert(k.result_of(pid));
    }
    EXPECT_LE(decisions.size(), 1u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------- abd --

engine::task<std::int64_t> write_then_read(engine::node& self,
                                           engine::var_id reg,
                                           std::int64_t value) {
  co_await abd::write(self, reg, value);
  co_return co_await abd::read(self, reg);
}

TEST(Abd, ReadYourWrite) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 5, .seed = 4}, adv);
  k.attach(0, write_then_read(k.node_at(0), abd::register_var(9), 1234));
  ASSERT_TRUE(k.run().completed);
  EXPECT_EQ(k.result_of(0), 1234);
}

TEST(Abd, ReadDefaultWhenUnwritten) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 5, .seed = 4}, adv);
  k.attach(1, abd::read(k.node_at(1), abd::register_var(10), -5));
  ASSERT_TRUE(k.run().completed);
  EXPECT_EQ(k.result_of(1), -5);
}

TEST(Abd, SequentialWritesObeyLastWriterWins) {
  // Writer 0 completes, then writer 1 completes, then a reader must see
  // writer 1's value (sequential = real-time ordered).
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 5, .seed = 6}, adv);
  const auto reg = abd::register_var(11);
  k.attach(0, abd::write(k.node_at(0), reg, 100));
  k.attach(1, abd::write(k.node_at(1), reg, 200));
  k.attach(2, abd::read(k.node_at(2), reg, 0));
  k.hold_protocol(1, true);
  k.hold_protocol(2, true);
  auto run_until = [&](process_id pid) {
    while (!k.node_at(pid).protocol_done()) {
      ASSERT_TRUE(k.anything_enabled());
      if (!k.steppable().empty()) {
        k.execute(sim::action::step(k.steppable().front()));
      } else {
        k.execute(sim::action::deliver(k.in_flight().ids().front()));
      }
    }
  };
  run_until(0);
  k.hold_protocol(1, false);
  run_until(1);
  k.hold_protocol(2, false);
  run_until(2);
  EXPECT_EQ(k.result_of(2), 200);
}

TEST(Abd, ConcurrentWritesConvergeToOneValue) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    adversary::uniform_random adv;
    sim::kernel k(sim::kernel_config{.n = 6, .seed = seed}, adv);
    const auto reg = abd::register_var(12);
    k.attach(0, abd::write(k.node_at(0), reg, 111));
    k.attach(1, abd::write(k.node_at(1), reg, 222));
    ASSERT_TRUE(k.run().completed);
    // Two fresh readers must agree after both writes completed.
    adversary::uniform_random adv2;
    k.attach(2, abd::read(k.node_at(2), reg, 0));
    k.attach(3, abd::read(k.node_at(3), reg, 0));
    ASSERT_TRUE(k.run().completed);
    EXPECT_EQ(k.result_of(2), k.result_of(3)) << "seed " << seed;
    EXPECT_TRUE(k.result_of(2) == 111 || k.result_of(2) == 222);
  }
}

// --------------------------------------------------------- tournament --

class TournamentSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(TournamentSweep, ExactlyOneWinner) {
  const auto [n, adversary_name] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    exp::trial_config config;
    config.kind = exp::algo::tournament;
    config.n = n;
    config.seed = seed;
    config.adversary = adversary_name;
    const exp::trial_result result = exp::run_trial(config);
    ASSERT_TRUE(result.completed) << "n=" << n << " seed=" << seed;
    EXPECT_EQ(result.winners, 1)
        << "n=" << n << " adv=" << adversary_name << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TournamentSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 9, 16),
                       ::testing::Values("uniform", "round-robin",
                                         "sequential")),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

TEST(Tournament, WinnerPlaysAllLevels) {
  adversary::round_robin adv;
  const int n = 16;
  sim::kernel k(sim::kernel_config{.n = n, .seed = 8}, adv);
  for (process_id pid = 0; pid < n; ++pid) {
    k.attach(pid, erase_result(election::tournament_elect(
                      k.node_at(pid), election::tournament_params{})));
  }
  ASSERT_TRUE(k.run().completed);
  process_id winner = no_process;
  for (process_id pid = 0; pid < n; ++pid) {
    if (k.result_of(pid) == win_value) winner = pid;
  }
  ASSERT_NE(winner, no_process);
  // The winner ascended log2(16) = 4 levels.
  EXPECT_EQ(k.node_at(winner).probe().round, 4);
}

TEST(Tournament, WithDoorwayLateArrivalLoses) {
  adversary::round_robin adv;
  sim::kernel k(sim::kernel_config{.n = 6, .seed = 9}, adv);
  election::tournament_params params;
  params.with_doorway = true;
  for (process_id pid = 0; pid < 6; ++pid) {
    k.attach(pid, erase_result(
                      election::tournament_elect(k.node_at(pid), params)));
  }
  k.hold_protocol(5, true);
  while (!k.node_at(0).protocol_done()) {
    ASSERT_TRUE(k.anything_enabled());
    if (!k.steppable().empty()) {
      k.execute(sim::action::step(k.steppable().front()));
    } else {
      k.execute(sim::action::deliver(k.in_flight().ids().front()));
    }
  }
  k.hold_protocol(5, false);
  ASSERT_TRUE(k.run().completed);
  EXPECT_NE(k.result_of(5), win_value);  // door was closed
  int winners = 0;
  for (process_id pid = 0; pid < 6; ++pid) {
    winners += k.result_of(pid) == win_value ? 1 : 0;
  }
  EXPECT_EQ(winners, 1);
}

TEST(Tournament, TimeGrowsWithN_ElectionDoesNot) {
  // The headline contrast (E1, statistically weak version): tournament
  // max communicate calls grow ~log n; LeaderElect stays near-flat.
  const auto mean_time = [&](exp::algo kind, int n) {
    double total = 0;
    const int trials = 6;
    for (std::uint64_t t = 1; t <= trials; ++t) {
      exp::trial_config config;
      config.kind = kind;
      config.n = n;
      config.seed = t;
      const exp::trial_result result = exp::run_trial(config);
      EXPECT_TRUE(result.completed);
      total += static_cast<double>(result.max_communicate_calls);
    }
    return total / trials;
  };
  const double tournament_8 = mean_time(exp::algo::tournament, 8);
  const double tournament_64 = mean_time(exp::algo::tournament, 64);
  const double ours_8 = mean_time(exp::algo::leader_elect, 8);
  const double ours_64 = mean_time(exp::algo::leader_elect, 64);
  // Tournament cost increases markedly with n.
  EXPECT_GT(tournament_64, tournament_8 * 1.5);
  // Ours grows much more slowly.
  EXPECT_LT(ours_64, ours_8 * 2.0);
  // And at n=64 ours is cheaper.
  EXPECT_LT(ours_64, tournament_64);
}

}  // namespace
}  // namespace elect
