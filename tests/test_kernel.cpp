// Simulator kernel tests: event mechanics, crash semantics, determinism,
// hold/release, and the communicate engine's quorum behaviour.
#include <gtest/gtest.h>

#include <tuple>

#include "adversary/basic.hpp"
#include "adversary/registry.hpp"
#include "election/leader_elect.hpp"
#include "engine/node.hpp"
#include "engine/views.hpp"
#include "sim/indexed_set.hpp"
#include "sim/kernel.hpp"

namespace elect {
namespace {

using engine::erase_result;

// A trivial protocol that propagates one cell and collects once, then
// returns the number of views it received.
engine::task<std::int64_t> one_shot(engine::node& self) {
  const engine::var_id var{engine::var_family::test_i64_array, 0, 0};
  auto delta = self.stage_own_cell<std::int64_t>(var, self.id() + 100);
  co_await self.propagate(var, delta);
  const auto views = co_await self.collect(var);
  co_return static_cast<std::int64_t>(views.size());
}

TEST(IndexedSet, InsertEraseSample) {
  sim::indexed_id_set set;
  EXPECT_TRUE(set.empty());
  set.insert(10);
  set.insert(20);
  set.insert(30);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(20));
  set.erase(20);
  EXPECT_FALSE(set.contains(20));
  EXPECT_EQ(set.size(), 2u);
  rng_stream rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t id = set.sample(rng);
    EXPECT_TRUE(id == 10 || id == 30);
  }
}

TEST(Kernel, OneShotProtocolCompletes) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 5, .seed = 1}, adv);
  k.attach(2, one_shot(k.node_at(2)));
  const auto result = k.run();
  ASSERT_TRUE(result.completed);
  // The collect returns at least a quorum of views.
  EXPECT_GE(k.result_of(2), quorum_size(5));
  EXPECT_LE(k.result_of(2), 5);
}

TEST(Kernel, WorksWithSingleProcessor) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 1, .seed = 3}, adv);
  k.attach(0, one_shot(k.node_at(0)));
  ASSERT_TRUE(k.run().completed);
  EXPECT_EQ(k.result_of(0), 1);
}

TEST(Kernel, PropagateReachesAllAfterFullDelivery) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 9}, adv);
  k.attach(0, one_shot(k.node_at(0)));
  ASSERT_TRUE(k.run().completed);
  // Flush every remaining message so all stores converge.
  while (!k.in_flight().empty()) {
    k.execute(sim::action::deliver(k.in_flight().ids().front()));
  }
  for (process_id pid = 0; pid < 4; ++pid) {
    while (k.node_at(pid).can_step()) k.execute(sim::action::step(pid));
    const auto* view =
        k.node_at(pid).local_store().view<engine::owned_array<std::int64_t>>(
            {engine::var_family::test_i64_array, 0, 0});
    ASSERT_NE(view, nullptr) << "pid " << pid;
    EXPECT_EQ(*view->get(0), 100);
  }
}

TEST(Kernel, MetricsCountMessages) {
  adversary::uniform_random adv;
  const int n = 6;
  sim::kernel k(sim::kernel_config{.n = n, .seed = 2}, adv);
  k.attach(0, one_shot(k.node_at(0)));
  ASSERT_TRUE(k.run().completed);
  const auto& m = k.metrics();
  // Two communicate calls, each fanning out n requests.
  EXPECT_EQ(m.communicate_calls[0], 2u);
  EXPECT_EQ(m.requests_sent, static_cast<std::uint64_t>(2 * n));
  EXPECT_GE(m.acks_sent + m.collect_replies_sent,
            static_cast<std::uint64_t>(2 * quorum_size(n)));
  EXPECT_GT(m.wire_bytes, 0u);
}

TEST(Kernel, DeterministicTraceAndResult) {
  auto run_once = [](std::uint64_t seed) {
    adversary::uniform_random adv;
    sim::kernel k(sim::kernel_config{.n = 6, .seed = seed}, adv);
    for (process_id pid = 0; pid < 6; ++pid) {
      k.attach(pid, erase_result(election::leader_elect(k.node_at(pid))));
    }
    EXPECT_TRUE(k.run().completed);
    std::vector<std::int64_t> results;
    for (process_id pid = 0; pid < 6; ++pid) {
      results.push_back(k.result_of(pid));
    }
    return std::make_tuple(k.trace_hash(), k.events(), results);
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(std::get<0>(run_once(77)), std::get<0>(run_once(78)));
}

TEST(Kernel, CrashBudgetEnforced) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 5, .seed = 1}, adv);
  EXPECT_EQ(k.crash_budget(), max_crash_faults(5));  // = 2
  k.execute(sim::action::crash(0));
  k.execute(sim::action::crash(1));
  EXPECT_FALSE(k.can_crash());
  EXPECT_TRUE(k.crashed(0));
  EXPECT_TRUE(k.crashed(1));
  EXPECT_DEATH(k.execute(sim::action::crash(2)), "budget");
}

TEST(Kernel, CrashedProcessorTakesNoSteps) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 1}, adv);
  k.attach(1, one_shot(k.node_at(1)));
  EXPECT_TRUE(k.node_at(1).can_step());
  k.execute(sim::action::crash(1));
  // The node no longer appears in the steppable set.
  for (const process_id pid : k.steppable()) EXPECT_NE(pid, 1);
  EXPECT_DEATH(k.execute(sim::action::step(1)), "crashed");
}

TEST(Kernel, DropOnlyFromCrashedSenders) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 1}, adv);
  k.attach(0, one_shot(k.node_at(0)));
  k.execute(sim::action::step(0));  // sends the propagate fan-out
  ASSERT_FALSE(k.in_flight_from(0).empty());
  const std::uint64_t id = k.in_flight_from(0).ids().front();
  EXPECT_DEATH(k.execute(sim::action::drop(id)), "crashed");
  k.execute(sim::action::crash(0));
  k.execute(sim::action::drop(id));
  EXPECT_EQ(k.metrics().dropped_messages, 1u);
}

TEST(Kernel, DeliveryToCrashedProcessorAllowed) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 1}, adv);
  k.attach(0, one_shot(k.node_at(0)));
  k.execute(sim::action::step(0));
  k.execute(sim::action::crash(2));
  // Find a message addressed to the crashed node and deliver it.
  ASSERT_FALSE(k.in_flight_to(2).empty());
  const std::uint64_t id = k.in_flight_to(2).ids().front();
  k.execute(sim::action::deliver(id));
  EXPECT_EQ(k.node_at(2).mailbox_size(), 1u);
  // It still must not step.
  for (const process_id pid : k.steppable()) EXPECT_NE(pid, 2);
}

TEST(Kernel, ElectionSurvivesMaximalCrashes) {
  // Crash the maximum ceil(n/2)-1 processors; the rest must terminate.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto adv = adversary::make("crash-uniform", 7);
    sim::kernel k(sim::kernel_config{.n = 7, .seed = seed}, *adv);
    for (process_id pid = 0; pid < 7; ++pid) {
      k.attach(pid, erase_result(election::leader_elect(k.node_at(pid))));
    }
    const auto result = k.run();
    ASSERT_TRUE(result.completed) << "seed " << seed;
    int winners = 0;
    for (process_id pid = 0; pid < 7; ++pid) {
      if (!k.crashed(pid) &&
          k.result_of(pid) ==
              static_cast<std::int64_t>(election::tas_result::win)) {
        ++winners;
      }
    }
    EXPECT_LE(winners, 1) << "seed " << seed;
  }
}

TEST(Kernel, HoldPreventsInvocationButNotServing) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 3, .seed = 1}, adv);
  k.attach(0, one_shot(k.node_at(0)));
  k.attach(1, one_shot(k.node_at(1)));
  k.hold_protocol(1, true);
  EXPECT_FALSE(k.node_at(1).can_step());  // nothing to do while held
  // Run node 0's protocol to completion; node 1 serves but never starts.
  while (!k.node_at(0).protocol_done()) {
    ASSERT_TRUE(k.anything_enabled());
    if (!k.steppable().empty()) {
      k.execute(sim::action::step(k.steppable().front()));
    } else {
      k.execute(sim::action::deliver(k.in_flight().ids().front()));
    }
  }
  EXPECT_FALSE(k.node_at(1).protocol_started());
  EXPECT_GT(k.metrics().computation_steps[1], 0u);  // it served
  // Release and finish.
  k.hold_protocol(1, false);
  ASSERT_TRUE(k.run().completed);
  EXPECT_TRUE(k.node_at(1).protocol_done());
}

TEST(Kernel, InvokeAndReturnEventsRecorded) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 3, .seed = 4}, adv);
  k.attach(0, one_shot(k.node_at(0)));
  EXPECT_EQ(k.invoke_event(0), UINT64_MAX);
  ASSERT_TRUE(k.run().completed);
  EXPECT_NE(k.invoke_event(0), UINT64_MAX);
  EXPECT_NE(k.return_event(0), UINT64_MAX);
  EXPECT_LT(k.invoke_event(0), k.return_event(0));
  EXPECT_EQ(k.invoke_event(1), UINT64_MAX);  // never attached
}

TEST(Kernel, StaleRepliesAreIgnoredNotFatal) {
  // Run a full election and check that late replies (beyond quorum) were
  // recorded as stale rather than corrupting later ops.
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 5, .seed = 11}, adv);
  for (process_id pid = 0; pid < 5; ++pid) {
    k.attach(pid, erase_result(election::leader_elect(k.node_at(pid))));
  }
  ASSERT_TRUE(k.run().completed);
  // Flush everything; serving stale traffic must not disturb anyone.
  while (!k.in_flight().empty()) {
    k.execute(sim::action::deliver(k.in_flight().ids().front()));
    while (!k.steppable().empty()) {
      k.execute(sim::action::step(k.steppable().front()));
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace elect
