// elect::api parity suite: ONE scenario matrix, run against BOTH
// backends — the in-process service and the TCP wire through a
// loopback elect server. The facade's contract is that semantics are
// identical over the two, so every test here is parameterized on the
// backend kind and must pass unchanged on each:
//
//   * unique winner per epoch across clients;
//   * handoff: RAII release wakes the blocked loser into a win;
//   * auto-renew: a lease outlives 3x its TTL untouched while the
//     heartbeat renews at TTL/3;
//   * crash reclaim: abandon() wedges the key only until TTL + sweep;
//   * watch delivery: elected / released / expired all observed;
//   * fenced zombie: the abandoned lease's late release is stale.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using namespace std::chrono_literals;

enum class backend_kind { local, remote };

std::string to_string(backend_kind k) {
  return k == backend_kind::local ? "Local" : "Remote";
}

/// One service (+ server, for the remote flavor) and a client factory.
struct rig {
  rig(backend_kind kind, svc::service_config config) : kind(kind) {
    service.emplace(std::move(config));
    if (kind == backend_kind::remote) {
      server.emplace(*service, net::server_config{});
      EXPECT_TRUE(server->listening());
    }
  }

  [[nodiscard]] std::unique_ptr<api::client> connect() {
    if (kind == backend_kind::local) {
      return std::make_unique<api::client>(*service);
    }
    return std::make_unique<api::client>("127.0.0.1", server->port());
  }

  backend_kind kind;
  std::optional<svc::service> service;
  std::optional<net::server> server;
};

svc::service_config base_config() {
  svc::service_config config;
  config.nodes = 4;
  config.shards = 2;
  config.seed = 99;
  return config;
}

svc::service_config leased_config(std::uint64_t ttl_ms,
                                  std::uint64_t sweep_ms) {
  svc::service_config config = base_config();
  config.lease_ttl_ms = ttl_ms;
  config.sweep_interval_ms = sweep_ms;
  return config;
}

class ApiParity : public ::testing::TestWithParam<backend_kind> {};

// ---------------------------------------------------------------------

TEST_P(ApiParity, UniqueWinnerAcrossClients) {
  rig r(GetParam(), base_config());
  constexpr int contenders = 6;
  const std::string key = "jobs/compactor";

  std::vector<std::unique_ptr<api::client>> clients;
  for (int i = 0; i < contenders; ++i) {
    clients.push_back(r.connect());
    ASSERT_TRUE(clients.back()->connected());
  }

  std::vector<api::acquired> results(contenders);
  std::vector<std::thread> threads;
  for (int i = 0; i < contenders; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          clients[static_cast<std::size_t>(i)]->try_acquire(key);
    });
  }
  for (auto& t : threads) t.join();

  int winners = 0;
  for (const auto& result : results) {
    if (result.won()) {
      ++winners;
      EXPECT_TRUE(result.lease.held());
      EXPECT_EQ(result.lease.key(), key);
      EXPECT_EQ(result.lease.epoch(), result.epoch);
    } else {
      EXPECT_EQ(result.status, api::acquire_status::lost);
      EXPECT_FALSE(result.lease.held());
    }
  }
  EXPECT_EQ(winners, 1);
}

TEST_P(ApiParity, HandoffOnRaiiRelease) {
  rig r(GetParam(), base_config());
  const std::string key = "locks/handoff";
  auto first = r.connect();
  auto second = r.connect();

  std::uint64_t first_epoch = 0;
  api::acquired takeover;
  std::thread waiter;
  {
    api::acquired held = first->acquire(key);
    ASSERT_TRUE(held.won());
    first_epoch = held.epoch;
    waiter = std::thread([&] { takeover = second->acquire(key); });
    // Give the waiter time to actually block on the held epoch.
    std::this_thread::sleep_for(50ms);
    EXPECT_FALSE(takeover.won());
    // `held` leaves scope here: RAII release, no explicit call.
  }
  waiter.join();
  ASSERT_TRUE(takeover.won());
  EXPECT_GT(takeover.epoch, first_epoch);
  EXPECT_TRUE(takeover.lease.held());
}

TEST_P(ApiParity, AutoRenewOutlivesThreeTtls) {
  constexpr std::uint64_t ttl_ms = 120;
  rig r(GetParam(), leased_config(ttl_ms, 30));
  const std::string key = "primary/db";
  auto holder = r.connect();
  auto rival = r.connect();

  api::acquired held = holder->try_acquire(key);
  ASSERT_TRUE(held.won());

  // Without the heartbeat the lease would expire at 1x TTL and the
  // sweeper would hand the key to the rival. Sit past 3x TTL.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ttl_ms) * 7 / 2;
  while (std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(20ms);
    EXPECT_FALSE(rival->try_acquire(key).won());
  }
  EXPECT_TRUE(held.lease.held());
  EXPECT_FALSE(held.lease.lost());

  const auto report = r.service->report();
  EXPECT_GE(report.renewals, 3u);  // at TTL/3 cadence, 3.5 TTLs => >= 3
  EXPECT_EQ(report.expirations, 0u);

  EXPECT_EQ(held.lease.release(), api::lease_status::ok);
  EXPECT_FALSE(held.lease.held());
  api::acquired next = rival->try_acquire(key);
  EXPECT_TRUE(next.won());
  EXPECT_GT(next.epoch, held.epoch);
}

TEST_P(ApiParity, AbandonIsReclaimedByTtlSweep) {
  rig r(GetParam(), leased_config(100, 25));
  const std::string key = "locks/crashy";
  auto doomed = r.connect();
  auto standby = r.connect();

  api::acquired held = doomed->try_acquire(key);
  ASSERT_TRUE(held.won());
  held.lease.abandon();  // the holder "crashes": no release, no renew
  EXPECT_FALSE(held.lease.held());

  const auto before = std::chrono::steady_clock::now();
  api::acquired takeover = standby->acquire(key);
  const auto waited = std::chrono::steady_clock::now() - before;
  ASSERT_TRUE(takeover.won());
  EXPECT_GT(takeover.epoch, held.epoch);
  // Reclaim is bounded by TTL + sweep interval (plus scheduling slack).
  EXPECT_LT(waited, 2s);
  EXPECT_GE(r.service->report().expirations, 1u);
}

TEST_P(ApiParity, AbandonedZombieReleaseIsFenced) {
  rig r(GetParam(), leased_config(100, 25));
  const std::string key = "locks/zombie";
  auto zombie = r.connect();
  auto standby = r.connect();

  api::acquired held = zombie->try_acquire(key);
  ASSERT_TRUE(held.won());
  held.lease.abandon();

  api::acquired takeover = standby->acquire(key);
  ASSERT_TRUE(takeover.won());

  // The zombie resurfaces and tries to step down with its old claim:
  // the epoch fence turns it away and the new holder is untouched.
  EXPECT_EQ(held.lease.release(), api::lease_status::stale_epoch);
  EXPECT_TRUE(takeover.lease.held());
  EXPECT_FALSE(standby->try_acquire(key).won());  // still held by takeover
}

TEST_P(ApiParity, WatchSeesElectedReleasedAndExpired) {
  rig r(GetParam(), leased_config(100, 25));
  const std::string key = "watched/leader";
  auto watcher = r.connect();
  auto actor = r.connect();

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<api::watch_event> events;
  api::subscription sub =
      watcher->watch(key, [&](const api::watch_event& e) {
        const std::lock_guard<std::mutex> lock(mutex);
        events.push_back(e);
        cv.notify_all();
      });
  ASSERT_TRUE(sub.active());

  const auto saw = [&](api::transition kind, std::uint64_t epoch) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, 3s, [&] {
      for (const auto& e : events) {
        if (e.kind == kind && e.epoch == epoch && e.key == key) return true;
      }
      return false;
    });
  };

  // Epoch e0: elected, then voluntarily released.
  api::acquired first = actor->try_acquire(key);
  ASSERT_TRUE(first.won());
  EXPECT_TRUE(saw(api::transition::elected, first.epoch));
  EXPECT_EQ(first.lease.release(), api::lease_status::ok);
  EXPECT_TRUE(saw(api::transition::released, first.epoch));

  // Epoch e1: elected, then the holder crashes and the TTL fences it.
  api::acquired second = actor->try_acquire(key);
  ASSERT_TRUE(second.won());
  EXPECT_TRUE(saw(api::transition::elected, second.epoch));
  second.lease.abandon();
  EXPECT_TRUE(saw(api::transition::expired, second.epoch));

  // After cancel, no further delivery: run one more transition and give
  // it ample time to (wrongly) arrive.
  sub.cancel();
  EXPECT_FALSE(sub.active());
  std::size_t seen_before;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    seen_before = events.size();
  }
  api::acquired third = actor->try_acquire(key);
  ASSERT_TRUE(third.won());
  EXPECT_EQ(third.lease.release(), api::lease_status::ok);
  std::this_thread::sleep_for(200ms);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(events.size(), seen_before);
  }
}

TEST_P(ApiParity, WatchObservesRivalClientCrash) {
  // The crash story end to end: the watcher learns a *different
  // client's* leadership ended without anyone calling release. Locally
  // the TTL sweep reports `expired`; remotely destroying the client
  // closes the connection, whose disconnect-on-close hook releases the
  // keys — reported as `released`. Either way the watcher finds out,
  // within the TTL + sweep bound.
  rig r(GetParam(), leased_config(100, 25));
  const std::string key = "watched/crash";
  auto watcher = r.connect();

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<api::watch_event> events;
  api::subscription sub =
      watcher->watch(key, [&](const api::watch_event& e) {
        const std::lock_guard<std::mutex> lock(mutex);
        events.push_back(e);
        cv.notify_all();
      });
  ASSERT_TRUE(sub.active());

  std::uint64_t epoch = 0;
  {
    auto doomed = r.connect();
    api::acquired held = doomed->try_acquire(key);
    ASSERT_TRUE(held.won());
    epoch = held.epoch;
    held.lease.abandon();
    // `doomed` is destroyed here with the abandoned lease still wedging
    // the key.
  }
  std::unique_lock<std::mutex> lock(mutex);
  const bool observed = cv.wait_for(lock, 3s, [&] {
    for (const auto& e : events) {
      if (e.key == key && e.epoch == epoch &&
          (e.kind == api::transition::expired ||
           e.kind == api::transition::released)) {
        return true;
      }
    }
    return false;
  });
  EXPECT_TRUE(observed);
}

TEST_P(ApiParity, StopRejectsBlockedAcquire) {
  rig r(GetParam(), base_config());
  const std::string key = "locks/stopping";
  auto holder = r.connect();
  auto blocked = r.connect();

  api::acquired held = holder->try_acquire(key);
  ASSERT_TRUE(held.won());

  api::acquired result;
  std::thread waiter([&] { result = blocked->acquire(key); });
  std::this_thread::sleep_for(50ms);
  r.service->stop();
  waiter.join();
  EXPECT_EQ(result.status, api::acquire_status::rejected);
  EXPECT_FALSE(result.lease.held());
}

TEST_P(ApiParity, MetricsJsonRoundTripsOverBothTransports) {
  rig r(GetParam(), base_config());
  auto c = r.connect();
  api::acquired held = c->acquire("metrics/key");
  ASSERT_TRUE(held.won());
  const std::string json = c->metrics_json();
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"acquires\""), std::string::npos);
  EXPECT_NE(json.find("\"watch\""), std::string::npos);
  if (GetParam() == backend_kind::remote) {
    // The remote report additionally carries the wire-edge section.
    EXPECT_NE(json.find("\"net\""), std::string::npos);
    EXPECT_NE(json.find("\"events_pushed\""), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ApiParity,
                         ::testing::Values(backend_kind::local,
                                           backend_kind::remote),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Facade-specific behavior that is not part of the parity matrix.

TEST(ApiClient, TimedAcquireTimesOutWhileHeld) {
  svc::service service(base_config());
  api::client holder(service);
  api::client waiter(service);
  auto held = holder.acquire("locks/timed");
  ASSERT_TRUE(held.won());
  const auto result = waiter.try_acquire_for("locks/timed", 100ms);
  EXPECT_EQ(result.status, api::acquire_status::timed_out);
  EXPECT_FALSE(result.lease.held());
}

TEST(ApiClient, DestructionReleasesEverythingItHolds) {
  svc::service service(base_config());
  api::client rival(service);
  {
    api::client holder(service);
    ASSERT_TRUE(holder.acquire("locks/a").won());
    ASSERT_TRUE(holder.acquire("locks/b").won());
    // Leases intentionally kept alive inside `holder`'s scope... they
    // are destroyed (and released) along with their acquired results
    // above at end of statement — so re-take them held:
  }
  // With the holder (and its temporaries) gone, both keys are free.
  EXPECT_TRUE(rival.try_acquire("locks/a").won());
  EXPECT_TRUE(rival.try_acquire("locks/b").won());
}

TEST(ApiClient, LeaseOutlivesClientAsLost) {
  svc::service service(base_config());
  api::lease survivor;
  {
    api::client c(service);
    auto got = c.acquire("locks/outlive");
    ASSERT_TRUE(got.won());
    survivor = std::move(got.lease);
    EXPECT_TRUE(survivor.held());
  }
  // The client's teardown disconnected its identity; the surviving
  // lease degrades to lost instead of dangling.
  EXPECT_FALSE(survivor.held());
  EXPECT_TRUE(survivor.lost());
  EXPECT_EQ(survivor.release(), api::lease_status::stale_epoch);
  api::client rival(service);
  EXPECT_TRUE(rival.try_acquire("locks/outlive").won());
}

TEST(ApiClient, MalformedEndpointIsNotConnected) {
  api::client c(std::string("no-port-here"));
  EXPECT_FALSE(c.connected());
  const auto result = c.try_acquire("x");
  EXPECT_EQ(result.status, api::acquire_status::rejected);
}

TEST(ApiClient, LocalClientOnStoppedServiceRejects) {
  svc::service service(base_config());
  service.stop();
  api::client c(service);
  EXPECT_FALSE(c.connected());
  EXPECT_EQ(c.acquire("x").status, api::acquire_status::rejected);
  EXPECT_FALSE(c.watch("x", [](const api::watch_event&) {}).active());
}

}  // namespace
}  // namespace elect
