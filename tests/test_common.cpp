// Unit tests for common/: rng, math helpers, stats, scaling-law fitting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/fit.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace elect {
namespace {

// ---------------------------------------------------------------- rng --

TEST(Rng, SameSeedSameSequence) {
  rng_stream a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng_stream a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += a.next_u64() != b.next_u64();
  EXPECT_GT(differing, 60);
}

TEST(Rng, LabelledStreamsAreIndependent) {
  rng_stream a(7, {1}), b(7, {2}), c(7, {1});
  EXPECT_EQ(a.next_u64(), c.next_u64());
  rng_stream a2(7, {1});
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += a2.next_u64() != b.next_u64();
  EXPECT_GT(differing, 60);
}

TEST(Rng, DeriveDoesNotDisturbParent) {
  rng_stream a(99), b(99);
  (void)a.derive(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DerivedStreamsDifferByLabel) {
  rng_stream parent(42);
  rng_stream d1 = parent.derive(1);
  rng_stream d2 = parent.derive(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += d1.next_u64() != d2.next_u64();
  EXPECT_GT(differing, 60);
}

TEST(Rng, NextDoubleInUnitInterval) {
  rng_stream rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  rng_stream rng(6);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  rng_stream rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BernoulliFrequency) {
  rng_stream rng(8);
  const int trials = 100000;
  int heads = 0;
  for (int i = 0; i < trials; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  rng_stream rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BetweenInclusive) {
  rng_stream rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

// --------------------------------------------------------------- math --

TEST(Math, LogStar) {
  EXPECT_EQ(log_star(1.0), 0);
  EXPECT_EQ(log_star(2.0), 1);
  EXPECT_EQ(log_star(4.0), 2);
  EXPECT_EQ(log_star(16.0), 3);
  EXPECT_EQ(log_star(65536.0), 4);
  EXPECT_EQ(log_star(std::pow(2.0, 65536.0 > 1e300 ? 100.0 : 100.0)), 5);
}

TEST(Math, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(5), 3);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Math, PoisonPillBias) {
  EXPECT_DOUBLE_EQ(poison_pill_bias(1), 1.0);
  EXPECT_DOUBLE_EQ(poison_pill_bias(4), 0.5);
  EXPECT_DOUBLE_EQ(poison_pill_bias(100), 0.1);
}

TEST(Math, HetPoisonPillBias) {
  EXPECT_DOUBLE_EQ(het_poison_pill_bias(1), 1.0);
  EXPECT_NEAR(het_poison_pill_bias(2), std::log(2.0) / 2.0, 1e-12);
  EXPECT_NEAR(het_poison_pill_bias(100), std::log(100.0) / 100.0, 1e-12);
  // The bias never exceeds 1 and decays monotonically past |l| = 3.
  double previous = het_poison_pill_bias(3);
  for (std::size_t l = 4; l < 100; ++l) {
    const double bias = het_poison_pill_bias(l);
    EXPECT_LT(bias, previous);
    EXPECT_LE(bias, 1.0);
    previous = bias;
  }
}

TEST(Math, QuorumProperties) {
  for (int n = 1; n <= 200; ++n) {
    // Two quorums always intersect.
    EXPECT_GT(2 * quorum_size(n), n) << n;
    // A quorum survives the maximum number of crashes.
    EXPECT_LE(quorum_size(n), n - max_crash_faults(n)) << n;
    EXPECT_GE(max_crash_faults(n), 0) << n;
  }
}

// -------------------------------------------------------------- stats --

TEST(Stats, MeanStddev) {
  sample_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, Quantiles) {
  sample_stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.95), 95.0, 1.0);
}

TEST(Stats, EmptyAndSingle) {
  sample_stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

// ---------------------------------------------------------------- fit --

TEST(Fit, RecoversLinearLaw) {
  std::vector<double> xs, ys;
  for (double n = 8; n <= 1024; n *= 2) {
    xs.push_back(n);
    ys.push_back(3.0 * n + 7.0);
  }
  const auto ranked = rank_growth_laws(xs, ys);
  EXPECT_EQ(ranked.front().law, "n");
  EXPECT_NEAR(ranked.front().a, 3.0, 1e-6);
  EXPECT_NEAR(ranked.front().b, 7.0, 1e-6);
  EXPECT_NEAR(ranked.front().r_squared, 1.0, 1e-9);
}

TEST(Fit, RecoversLogLaw) {
  std::vector<double> xs, ys;
  for (double n = 8; n <= 65536; n *= 2) {
    xs.push_back(n);
    ys.push_back(5.0 * std::log2(n) + 1.0);
  }
  const auto ranked = rank_growth_laws(xs, ys);
  EXPECT_EQ(ranked.front().law, "log n");
  EXPECT_NEAR(ranked.front().r_squared, 1.0, 1e-9);
}

TEST(Fit, RecoversQuadraticLaw) {
  std::vector<double> xs, ys;
  for (double n = 4; n <= 512; n *= 2) {
    xs.push_back(n);
    ys.push_back(0.5 * n * n);
  }
  const auto ranked = rank_growth_laws(xs, ys);
  EXPECT_EQ(ranked.front().law, "n^2");
}

TEST(Fit, SqrtBeatsLinearForSqrtData) {
  std::vector<double> xs, ys;
  for (double n = 4; n <= 4096; n *= 2) {
    xs.push_back(n);
    ys.push_back(2.0 * std::sqrt(n));
  }
  const auto sqrt_fit = fit_law(growth_law{"sqrt n", [](double n) {
                                             return std::sqrt(n);
                                           }},
                                xs, ys);
  const auto lin_fit =
      fit_law(growth_law{"n", [](double n) { return n; }}, xs, ys);
  EXPECT_GT(sqrt_fit.r_squared, lin_fit.r_squared);
}

TEST(Fit, ConstantData) {
  std::vector<double> xs = {1, 2, 4, 8}, ys = {5, 5, 5, 5};
  const auto fit = fit_law(
      growth_law{"const", [](double) { return 1.0; }}, xs, ys);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

}  // namespace
}  // namespace elect
