// Adversary strategy tests: every portfolio strategy must be fair enough
// to finish runs, and the specialized strategies must exhibit their
// defining behaviour (sequential invocation order, crash budgets, laggard
// release, contention starvation).
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic.hpp"
#include "adversary/crash.hpp"
#include "adversary/laggard.hpp"
#include "adversary/registry.hpp"
#include "adversary/sequential.hpp"
#include "election/leader_elect.hpp"
#include "election/poison_pill.hpp"
#include "engine/node.hpp"
#include "exp/harness.hpp"
#include "sim/kernel.hpp"

namespace elect {
namespace {

using engine::erase_result;

TEST(AdversaryRegistry, AllNamesConstruct) {
  for (const std::string name :
       {"uniform", "round-robin", "sequential", "flip-adaptive",
        "contention-delayer", "crash-uniform"}) {
    auto adv = adversary::make(name, 8);
    ASSERT_NE(adv, nullptr) << name;
  }
}

TEST(AdversaryRegistry, UnknownNameAborts) {
  EXPECT_DEATH((void)adversary::make("no-such-strategy", 8), "unknown");
}

TEST(AdversaryRegistry, PortfolioRunsEverythingToCompletion) {
  for (const std::string& name : adversary::standard_portfolio()) {
    exp::trial_config config;
    config.kind = exp::algo::leader_elect;
    config.n = 9;
    config.seed = 3;
    config.adversary = name;
    const exp::trial_result result = exp::run_trial(config);
    EXPECT_TRUE(result.completed) << name;
    EXPECT_EQ(result.winners, 1) << name;
  }
}

TEST(Sequential, InvocationsAreStrictlyOrdered) {
  // Under the sequential adversary, participant i+1's protocol is
  // invoked only after participant i's has returned.
  adversary::sequential adv;
  const int n = 6;
  sim::kernel k(sim::kernel_config{.n = n, .seed = 4}, adv);
  for (process_id pid = 0; pid < n; ++pid) {
    k.attach(pid, erase_result(election::poison_pill(
                      k.node_at(pid), election::poison_pill_params{})));
  }
  ASSERT_TRUE(k.run().completed);
  for (process_id pid = 0; pid + 1 < n; ++pid) {
    EXPECT_LE(k.return_event(pid), k.invoke_event(pid + 1))
        << "participant " << pid + 1 << " invoked before " << pid
        << " returned";
  }
}

TEST(Sequential, ExplicitOrderRespected) {
  adversary::sequential adv({2, 0, 1});
  sim::kernel k(sim::kernel_config{.n = 3, .seed = 5}, adv);
  for (process_id pid = 0; pid < 3; ++pid) {
    k.attach(pid, erase_result(election::poison_pill(
                      k.node_at(pid), election::poison_pill_params{})));
  }
  ASSERT_TRUE(k.run().completed);
  EXPECT_LE(k.return_event(2), k.invoke_event(0));
  EXPECT_LE(k.return_event(0), k.invoke_event(1));
}

TEST(CrashInjector, NeverExceedsBudget) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    adversary::crash_config config;
    config.crashes = 100;  // ask for far more than the budget
    config.crash_rate = 0.5;
    adversary::crash_injector adv(
        std::make_unique<adversary::uniform_random>(), config);
    sim::kernel k(sim::kernel_config{.n = 9, .seed = seed}, adv);
    for (process_id pid = 0; pid < 9; ++pid) {
      k.attach(pid, erase_result(election::leader_elect(k.node_at(pid))));
    }
    ASSERT_TRUE(k.run().completed);
    EXPECT_LE(k.crashes_used(), max_crash_faults(9));
  }
}

TEST(CrashInjector, DropsInFlightOfCrashedSenders) {
  adversary::crash_config config;
  config.crashes = 2;
  config.crash_rate = 0.3;
  config.drop_in_flight = true;
  adversary::crash_injector adv(
      std::make_unique<adversary::uniform_random>(), config);
  sim::kernel k(sim::kernel_config{.n = 7, .seed = 3}, adv);
  for (process_id pid = 0; pid < 7; ++pid) {
    k.attach(pid, erase_result(election::leader_elect(k.node_at(pid))));
  }
  ASSERT_TRUE(k.run().completed);
  if (k.crashes_used() > 0) {
    // Crashed senders' messages were (eventually) dropped, not delivered:
    // nothing from a crashed sender may remain in flight forever — the
    // injector prioritizes drops, so by termination none remain.
    for (process_id pid = 0; pid < 7; ++pid) {
      if (k.crashed(pid)) {
        EXPECT_TRUE(k.in_flight_from(pid).empty());
      }
    }
  }
}

TEST(Laggard, ReleasesAfterFrontRunnersFinish) {
  auto base = std::make_unique<adversary::uniform_random>();
  adversary::laggard adv(std::move(base), {3});
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 6}, adv);
  for (process_id pid = 0; pid < 4; ++pid) {
    k.attach(pid, erase_result(election::leader_elect(k.node_at(pid))));
  }
  ASSERT_TRUE(k.run().completed);
  EXPECT_TRUE(adv.released());
  // The laggard was invoked after every front-runner returned.
  for (process_id pid = 0; pid < 3; ++pid) {
    EXPECT_LE(k.return_event(pid), k.invoke_event(3));
  }
}

TEST(ContentionDelayer, RenamingStillCorrect) {
  // Covered by the renaming sweep too; this checks the delayer actually
  // exercises the delay path on a bigger instance without stalling.
  exp::trial_config config;
  config.kind = exp::algo::renaming;
  config.n = 8;
  config.seed = 11;
  config.adversary = "contention-delayer";
  const exp::trial_result result = exp::run_trial(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.winners, 8);
}

TEST(FlipAdaptive, StillFairEnoughToTerminate) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    exp::trial_config config;
    config.kind = exp::algo::leader_elect;
    config.n = 12;
    config.seed = seed;
    config.adversary = "flip-adaptive";
    const exp::trial_result result = exp::run_trial(config);
    ASSERT_TRUE(result.completed) << "seed " << seed;
    EXPECT_EQ(result.winners, 1);
  }
}

}  // namespace
}  // namespace elect
