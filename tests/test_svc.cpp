// Election-service tests: unique leadership per key under concurrent
// acquirers (every observed interleaving), re-election after release,
// shard distribution sanity, and the batching mailbox/transport path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "election/leader_elect.hpp"
#include "mt/cluster.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

TEST(SvcService, SoloAcquireWins) {
  svc::service service(svc::service_config{.nodes = 4, .shards = 2});
  auto session = service.connect();
  const auto result = session.try_acquire("alpha");
  EXPECT_TRUE(result.won);
  EXPECT_EQ(result.epoch, 0u);
  EXPECT_EQ(service.registry().leader_of("alpha"), session.id());

  const auto report = service.report();
  EXPECT_EQ(report.acquires, 1u);
  EXPECT_EQ(report.wins, 1u);
  EXPECT_GT(report.total_messages, 0u);
}

TEST(SvcService, UniqueLeaderPerKeyUnderConcurrentAcquirers) {
  // More sessions than keys; every session races on every key from its
  // own OS thread. Exactly one session may win each (key, epoch 0).
  constexpr int sessions = 6;
  const std::vector<std::string> keys = {"k/0", "k/1", "k/2"};
  svc::service service(
      svc::service_config{.nodes = sessions, .shards = 4, .seed = 17});

  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());

  // vector<char>, not vector<bool>: the clients write distinct elements
  // concurrently, and vector<bool>'s bit-packing would make that a race.
  std::vector<std::vector<char>> won(
      keys.size(), std::vector<char>(sessions, 0));
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      for (std::size_t k = 0; k < keys.size(); ++k) {
        won[k][static_cast<std::size_t>(i)] =
            handles[static_cast<std::size_t>(i)].try_acquire(keys[k]).won;
      }
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t k = 0; k < keys.size(); ++k) {
    int winners = 0;
    for (int i = 0; i < sessions; ++i) {
      winners += won[k][static_cast<std::size_t>(i)] ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "key " << keys[k];
    EXPECT_EQ(service.registry().leader_of(keys[k]) == -1, false);
  }
  const auto report = service.report();
  EXPECT_EQ(report.acquires,
            static_cast<std::uint64_t>(sessions) * keys.size());
  EXPECT_EQ(report.wins, keys.size());
}

TEST(SvcService, MoreSessionsThanNodesStillOneLeader) {
  // Sessions sharing a pool node serialize on its driver; the second
  // invocation on a node that already contended an instance must lose.
  constexpr int sessions = 6;
  svc::service service(
      svc::service_config{.nodes = 2, .shards = 2, .seed = 5});
  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());

  std::atomic<int> winners{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      if (handles[static_cast<std::size_t>(i)].try_acquire("hot").won) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(SvcService, ReelectionAfterRelease) {
  // A single session acquires and releases the same key repeatedly; each
  // release bumps the epoch and the solo acquirer must win the fresh
  // instance every time.
  svc::service service(svc::service_config{.nodes = 4, .shards = 2});
  auto session = service.connect();
  for (std::uint64_t epoch = 0; epoch < 5; ++epoch) {
    const auto result = session.try_acquire("cycle");
    ASSERT_TRUE(result.won) << "epoch " << epoch;
    ASSERT_EQ(result.epoch, epoch);
    session.release("cycle");
    EXPECT_EQ(service.registry().leader_of("cycle"), -1);
  }
  const auto report = service.report();
  EXPECT_EQ(report.wins, 5u);
  EXPECT_EQ(report.releases, 5u);
}

TEST(SvcService, BlockingAcquireHandsLeadershipAround) {
  // The distributed-lock pattern: every session blocks in acquire() until
  // it holds the key, runs a critical section, releases. Mutual exclusion
  // and eventual hand-off to every session must hold.
  constexpr int sessions = 4;
  svc::service service(
      svc::service_config{.nodes = sessions, .shards = 2, .seed = 23});
  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());

  std::atomic<int> inside{0};
  std::atomic<int> entries{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      auto& session = handles[static_cast<std::size_t>(i)];
      const auto result = session.acquire("mutex");
      EXPECT_TRUE(result.won);
      const int concurrent = inside.fetch_add(1) + 1;
      EXPECT_EQ(concurrent, 1) << "two holders at once";
      entries.fetch_add(1);
      inside.fetch_sub(1);
      session.release("mutex");
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(entries.load(), sessions);
  EXPECT_EQ(service.report().releases,
            static_cast<std::uint64_t>(sessions));
}

TEST(SvcService, ShardDistributionSanity) {
  constexpr int shard_count = 8;
  constexpr int key_count = 64;
  svc::service service(
      svc::service_config{.nodes = 4, .shards = shard_count});
  auto session = service.connect();
  for (int k = 0; k < key_count; ++k) {
    ASSERT_TRUE(session.try_acquire("key/" + std::to_string(k)).won);
  }

  auto& registry = service.registry();
  EXPECT_EQ(registry.key_count(), static_cast<std::size_t>(key_count));
  std::size_t sum = 0;
  std::size_t max_in_one = 0;
  int used = 0;
  for (int s = 0; s < shard_count; ++s) {
    const std::size_t in_shard = registry.keys_in_shard(s);
    sum += in_shard;
    max_in_one = std::max(max_in_one, in_shard);
    used += in_shard > 0 ? 1 : 0;
  }
  EXPECT_EQ(sum, static_cast<std::size_t>(key_count));
  // No degenerate hashing: nobody owns everything, several shards in use.
  EXPECT_LT(max_in_one, static_cast<std::size_t>(key_count / 2));
  EXPECT_GE(used, shard_count / 2);
  // shard_of is stable and in range.
  for (int k = 0; k < key_count; ++k) {
    const std::string key = "key/" + std::to_string(k);
    const int shard = registry.shard_of(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, shard_count);
    EXPECT_EQ(shard, registry.shard_of(key));
  }
}

TEST(SvcService, ReportExposesPoolAndLatencyMetrics) {
  svc::service service(svc::service_config{.nodes = 4, .shards = 4});
  auto session = service.connect();
  for (int k = 0; k < 8; ++k) {
    session.try_acquire("m/" + std::to_string(k));
  }
  const auto report = service.report();
  EXPECT_EQ(report.acquires, 8u);
  EXPECT_GT(report.messages_per_acquire, 0.0);
  EXPECT_GT(report.mean_communicate_calls, 0.0);
  EXPECT_GE(report.max_communicate_calls,
            static_cast<std::uint64_t>(report.mean_communicate_calls));
  EXPECT_GE(report.acquire_p99_ms, report.acquire_p50_ms);
  EXPECT_GT(report.acquire_p50_ms, 0.0);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"acquires\":8"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":["), std::string::npos);
}

// ---------------------------------------------------------------------
// Batching mailbox / transport.

TEST(MtMailbox, PushBatchDeliversEverythingOnce) {
  mt::mailbox box;
  std::vector<engine::message> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(engine::message{
        0, 1, static_cast<std::uint64_t>(i), engine::ack_reply{}});
  }
  box.push_batch(batch);
  EXPECT_TRUE(batch.empty());

  std::deque<engine::message> out;
  ASSERT_TRUE(box.drain_blocking(out));
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].token,
              static_cast<std::uint64_t>(i));
  }
}

TEST(MtMailbox, PokeWakesWithoutMessages) {
  mt::mailbox box;
  std::thread poker([&] { box.poke(); });
  std::deque<engine::message> out;
  EXPECT_TRUE(box.drain_blocking(out));  // poke, not stop: returns true
  EXPECT_TRUE(out.empty());
  poker.join();
  box.stop();
  EXPECT_FALSE(box.drain_blocking(out));
}

TEST(MtMailbox, BatchCoalescingStress) {
  // Several producers hammer one mailbox with mixed push / push_batch /
  // poke while the consumer drains; every message must arrive exactly
  // once, in per-producer order.
  constexpr int producers = 4;
  constexpr int per_producer = 500;
  mt::mailbox box;
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&box, p] {
      std::vector<engine::message> batch;
      for (int i = 0; i < per_producer; ++i) {
        batch.push_back(engine::message{
            p, 0, static_cast<std::uint64_t>(i), engine::ack_reply{}});
        if (batch.size() == 7) box.push_batch(batch);
        if (i % 97 == 0) box.poke();
      }
      box.push_batch(batch);
    });
  }

  std::vector<std::uint64_t> next_token(producers, 0);
  std::uint64_t received = 0;
  std::deque<engine::message> out;
  while (received < producers * per_producer) {
    out.clear();
    ASSERT_TRUE(box.drain_blocking(out));
    for (const engine::message& m : out) {
      const auto p = static_cast<std::size_t>(m.from);
      ASSERT_EQ(m.token, next_token[p]) << "per-producer order broken";
      next_token[p]++;
      received++;
    }
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(received, static_cast<std::uint64_t>(producers) * per_producer);
}

TEST(MtCluster, BatchedTransportElectsOneLeaderWithFewerPushes) {
  constexpr int n = 8;
  constexpr std::int64_t win_value =
      static_cast<std::int64_t>(election::tas_result::win);
  std::uint64_t batched_pushes = 0;
  std::uint64_t batched_messages = 0;
  for (const bool batching : {true, false}) {
    mt::cluster cluster(n, /*seed=*/31,
                        mt::cluster_options{.batch_transport = batching});
    for (process_id pid = 0; pid < n; ++pid) {
      cluster.attach(pid, [](engine::node& node) {
        return engine::erase_result(election::leader_elect(node));
      });
    }
    cluster.start();
    cluster.wait();
    int winners = 0;
    for (process_id pid = 0; pid < n; ++pid) {
      winners += cluster.result_of(pid) == win_value ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "batching=" << batching;
    if (batching) {
      batched_pushes = cluster.total_mailbox_pushes();
      batched_messages = cluster.total_messages();
      // Coalescing must actually coalesce: strictly fewer lock
      // acquisitions than messages (each broadcast alone offers n
      // same-destination opportunities).
      EXPECT_LT(batched_pushes, batched_messages);
    } else {
      EXPECT_EQ(cluster.total_mailbox_pushes(), cluster.total_messages());
    }
  }
  EXPECT_GT(batched_messages, 0u);
}

// ---------------------------------------------------------------------
// service_config::validate(): every rejectable field produces a
// descriptive error instead of a deep abort, and the error names the
// offending field.

TEST(SvcConfigValidate, DefaultAndTypicalConfigsAreValid) {
  EXPECT_FALSE(svc::service_config{}.validate().has_value());
  svc::service_config tuned{.nodes = 16,
                            .shards = 8,
                            .lease_ttl_ms = 5000,
                            .sweep_interval_ms = 1000};
  tuned.key_strategies["hot/key"] = election::strategy_kind::full;
  EXPECT_FALSE(tuned.validate().has_value());
}

TEST(SvcConfigValidate, RejectsNonPositiveNodes) {
  for (const int nodes : {0, -1, -100}) {
    svc::service_config config{.nodes = nodes};
    const auto error = config.validate();
    ASSERT_TRUE(error.has_value()) << "nodes=" << nodes;
    EXPECT_NE(error->find("nodes"), std::string::npos) << *error;
  }
}

TEST(SvcConfigValidate, RejectsNonPositiveShards) {
  for (const int shards : {0, -3}) {
    svc::service_config config{.shards = shards};
    const auto error = config.validate();
    ASSERT_TRUE(error.has_value()) << "shards=" << shards;
    EXPECT_NE(error->find("shards"), std::string::npos) << *error;
  }
}

TEST(SvcConfigValidate, RejectsNonPositiveMaxRounds) {
  svc::service_config config;
  config.max_rounds = 0;
  const auto error = config.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("max_rounds"), std::string::npos) << *error;
}

TEST(SvcConfigValidate, RejectsZeroPruneThreshold) {
  svc::service_config config;
  config.participated_prune_threshold = 0;
  const auto error = config.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("participated_prune_threshold"), std::string::npos)
      << *error;
}

TEST(SvcConfigValidate, RejectsSweepIntervalWithoutLeaseTtl) {
  svc::service_config config;
  config.sweep_interval_ms = 250;  // but lease_ttl_ms stays 0
  const auto error = config.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("sweep_interval_ms"), std::string::npos) << *error;
  EXPECT_NE(error->find("lease_ttl_ms"), std::string::npos) << *error;
  // Either field alone (or together) is fine.
  config.lease_ttl_ms = 1000;
  EXPECT_FALSE(config.validate().has_value());
  config.sweep_interval_ms = 0;
  EXPECT_FALSE(config.validate().has_value());
}

TEST(SvcConfigValidate, RejectsUnknownDefaultStrategy) {
  svc::service_config config;
  config.default_strategy = static_cast<election::strategy_kind>(250);
  const auto error = config.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("default_strategy"), std::string::npos) << *error;
}

TEST(SvcConfigValidate, RejectsUnknownOrEmptyKeyStrategyEntries) {
  svc::service_config config;
  config.key_strategies["orders/hot"] =
      static_cast<election::strategy_kind>(17);
  const auto error = config.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("orders/hot"), std::string::npos) << *error;
  EXPECT_NE(error->find("strategy_kind"), std::string::npos) << *error;

  svc::service_config empty_key;
  empty_key.key_strategies[""] = election::strategy_kind::full;
  const auto empty_error = empty_key.validate();
  ASSERT_TRUE(empty_error.has_value());
  EXPECT_NE(empty_error->find("empty key"), std::string::npos)
      << *empty_error;
}

TEST(SvcConfigValidate, ConstructorAcceptsEveryValidatedConfig) {
  // The constructor's contract: validate() passing implies construction
  // does not abort. Spot-check the edge values validate() admits.
  svc::service_config config{.nodes = 1, .shards = 1};
  config.participated_prune_threshold = 1;
  ASSERT_FALSE(config.validate().has_value());
  svc::service service(std::move(config));
  auto session = service.connect();
  EXPECT_TRUE(session.try_acquire("edge").won);
}

}  // namespace
}  // namespace elect
