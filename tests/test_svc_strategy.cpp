// Strategy-parity stress suite: every election strategy (full,
// sifter_pill, doorway_only, adaptive) must satisfy the same TAS
// invariants through the service — unique winner per (key, epoch), solo
// re-election, blocking-handoff mutual exclusion, lease expiry with
// zombie fencing, and the stop()-vs-acquire race. Plus adaptive-specific
// fast-path behaviour, per-key strategy routing, and the election-id
// exhaustion guard. Runs under ThreadSanitizer in CI (test_svc* glob).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "election/strategy.hpp"
#include "svc/registry.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using namespace std::chrono_literals;
using election::strategy_kind;

class SvcStrategy : public ::testing::TestWithParam<strategy_kind> {
 protected:
  [[nodiscard]] static svc::service_config config_with(
      strategy_kind kind, svc::service_config base = {}) {
    base.default_strategy = kind;
    return base;
  }
};

TEST_P(SvcStrategy, SoloAcquireWinsAndReelects) {
  svc::service service(config_with(
      GetParam(), {.nodes = 4, .shards = 2, .seed = 13}));
  auto session = service.connect();
  for (std::uint64_t epoch = 0; epoch < 5; ++epoch) {
    const auto result = session.try_acquire("solo");
    ASSERT_TRUE(result.won) << "epoch " << epoch;
    ASSERT_EQ(result.epoch, epoch);
    EXPECT_EQ(service.registry().leader_of("solo"), session.id());
    ASSERT_EQ(session.release("solo", result.epoch), svc::lease_status::ok);
  }
  const auto report = service.report();
  EXPECT_EQ(report.wins, 5u);
  const auto idx = static_cast<std::size_t>(GetParam());
  EXPECT_EQ(report.strategies[idx].acquires, 5u);
  EXPECT_EQ(report.strategies[idx].wins, 5u);
}

TEST_P(SvcStrategy, UniqueWinnerPerKeyUnderConcurrentAcquirers) {
  constexpr int sessions = 6;
  const std::vector<std::string> keys = {"k/0", "k/1", "k/2"};
  svc::service service(config_with(
      GetParam(), {.nodes = sessions, .shards = 4, .seed = 29}));

  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());

  std::vector<std::vector<char>> won(
      keys.size(), std::vector<char>(sessions, 0));
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      for (std::size_t k = 0; k < keys.size(); ++k) {
        won[k][static_cast<std::size_t>(i)] =
            handles[static_cast<std::size_t>(i)].try_acquire(keys[k]).won;
      }
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t k = 0; k < keys.size(); ++k) {
    int winners = 0;
    for (int i = 0; i < sessions; ++i) {
      winners += won[k][static_cast<std::size_t>(i)] ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "key " << keys[k];
    EXPECT_NE(service.registry().leader_of(keys[k]), -1);
  }
  const auto report = service.report();
  EXPECT_EQ(report.acquires,
            static_cast<std::uint64_t>(sessions) * keys.size());
  EXPECT_EQ(report.wins, keys.size());
}

TEST_P(SvcStrategy, BlockingHandoffPreservesMutualExclusion) {
  constexpr int sessions = 4;
  svc::service service(config_with(
      GetParam(), {.nodes = sessions, .shards = 2, .seed = 31}));
  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());

  std::atomic<int> inside{0};
  std::atomic<int> entries{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      auto& session = handles[static_cast<std::size_t>(i)];
      const auto result = session.acquire("mutex");
      EXPECT_TRUE(result.won);
      const int concurrent = inside.fetch_add(1) + 1;
      EXPECT_EQ(concurrent, 1) << "two holders at once";
      entries.fetch_add(1);
      inside.fetch_sub(1);
      session.release("mutex", result.epoch);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(entries.load(), sessions);
}

TEST_P(SvcStrategy, LeaseExpiryFailsOverAndZombieIsFenced) {
  svc::service service(config_with(GetParam(), {.nodes = 4,
                                                .shards = 2,
                                                .seed = 7,
                                                .lease_ttl_ms = 400,
                                                .sweep_interval_ms = 20}));
  auto zombie = service.connect();
  auto heir = service.connect();

  const auto won = zombie.try_acquire("crashy");
  ASSERT_TRUE(won.won);
  ASSERT_EQ(won.epoch, 0u);
  ASSERT_LT(won.lease_deadline, std::chrono::steady_clock::time_point::max());

  // The heir can only get the key through lease expiry: the zombie
  // "crashes" and never releases.
  svc::acquire_result heir_result;
  std::thread blocked([&] { heir_result = heir.acquire("crashy"); });
  blocked.join();

  EXPECT_TRUE(heir_result.won);
  EXPECT_GE(heir_result.epoch, 1u);
  EXPECT_EQ(service.registry().leader_of("crashy"), heir.id());

  // Zombie fencing must hold identically for every strategy, including
  // fast-path grants: the stale epoch is rejected, the heir untouched.
  EXPECT_EQ(zombie.release("crashy", won.epoch),
            svc::lease_status::stale_epoch);
  EXPECT_EQ(zombie.renew("crashy", won.epoch), svc::lease_status::stale_epoch);
  EXPECT_EQ(service.registry().leader_of("crashy"), heir.id());
  EXPECT_EQ(heir.release("crashy", heir_result.epoch), svc::lease_status::ok);

  const auto report = service.report();
  EXPECT_GE(report.expirations, 1u);
  EXPECT_GE(report.stale_fences, 2u);
}

TEST_P(SvcStrategy, ConcurrentStopRejectsAcquiresGracefully) {
  svc::service service(config_with(
      GetParam(), {.nodes = 4, .shards = 4, .seed = 2}));
  constexpr int client_count = 6;
  std::vector<svc::service::session> sessions;
  for (int c = 0; c < client_count; ++c) sessions.push_back(service.connect());

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < client_count; ++c) {
    clients.emplace_back([&, c] {
      auto& session = sessions[static_cast<std::size_t>(c)];
      while (!go.load()) std::this_thread::yield();
      for (int op = 0;; ++op) {
        const std::string key = "s/" + std::to_string(op % 8);
        const auto result = session.try_acquire(key);
        if (result.rejected) {
          rejected.fetch_add(1);
          EXPECT_TRUE(session.try_acquire("after-stop").rejected);
          return;
        }
        if (result.won) session.release(key, result.epoch);
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(5ms);
  service.stop();
  for (auto& t : clients) t.join();
  EXPECT_GT(rejected.load(), 0u);
}

// Regression: every way of releasing twice (or after disconnect) must
// come back with the same clean verdict no matter which strategy won
// the epoch — stale_epoch iff the presented epoch moved on, not_leader
// iff the epoch is current but the caller holds nothing. The adaptive
// fast path, the claim-arbitrated rungs, and the self-deciding full
// protocol all leave identical registry state behind a win, and this
// pins that down per strategy.
TEST_P(SvcStrategy, DoubleReleaseAndReleaseAfterDisconnectAreClean) {
  svc::service service(config_with(
      GetParam(), {.nodes = 2, .shards = 2, .seed = 37}));
  auto session = service.connect();

  // Double release, fenced and unfenced.
  const auto won = session.try_acquire("twice");
  ASSERT_TRUE(won.won);
  EXPECT_EQ(session.release("twice", won.epoch), svc::lease_status::ok);
  EXPECT_EQ(session.release("twice", won.epoch),
            svc::lease_status::stale_epoch);
  EXPECT_EQ(session.release("twice"), svc::lease_status::not_leader);
  EXPECT_EQ(session.renew("twice", won.epoch), svc::lease_status::stale_epoch);
  // Fenced with the *current* epoch of the released key: the epoch is
  // live but nobody holds it.
  const auto current = service.registry().current("twice");
  EXPECT_EQ(session.release("twice", current.epoch),
            svc::lease_status::not_leader);

  // Release after disconnect.
  const auto regained = session.try_acquire("twice");
  ASSERT_TRUE(regained.won);
  EXPECT_EQ(session.disconnect(), 1u);
  EXPECT_EQ(session.release("twice", regained.epoch),
            svc::lease_status::stale_epoch);
  EXPECT_EQ(session.release("twice"), svc::lease_status::not_leader);

  // A key never acquired by anyone sits at implicit epoch 0: that epoch
  // is *current*, so the fenced verdict is not_leader, not stale_epoch —
  // and probing it must not create registry state.
  EXPECT_EQ(session.release("never-acquired", 0),
            svc::lease_status::not_leader);
  EXPECT_EQ(session.renew("never-acquired", 0), svc::lease_status::not_leader);
  EXPECT_EQ(session.release("never-acquired", 3),
            svc::lease_status::stale_epoch);
  EXPECT_FALSE(service.registry().peek("never-acquired").has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SvcStrategy,
    ::testing::Values(strategy_kind::full, strategy_kind::sifter_pill,
                      strategy_kind::doorway_only, strategy_kind::adaptive),
    [](const ::testing::TestParamInfo<strategy_kind>& info) {
      return std::string(election::to_string(info.param));
    });

// ---------------------------------------------------------------------
// gcc 12 coroutine-frame workaround soak. doorway_only's elect() keeps
// the awaited doorway result in a *named local* because gcc 12
// miscompiles the frame when the co_await feeds a branch directly (the
// resumed frame never re-enters and the caller hangs — see
// election/strategy.cpp). This soak drives that exact coroutine shape
// through thousands of concurrent resumptions; a regression shows up as
// a hang (caught by the CI job timeout) or a TSan report, so the
// workaround cannot rot silently.

TEST(SvcDoorwaySoak, NamedLocalsWorkaroundSurvivesConcurrentChurn) {
  constexpr int sessions = 6;
  constexpr int keys = 4;
  constexpr int rounds = 150;
  svc::service service({.nodes = sessions,
                        .shards = 4,
                        .seed = 43,
                        .default_strategy = strategy_kind::doorway_only});
  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());

  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      auto& session = handles[static_cast<std::size_t>(i)];
      for (int r = 0; r < rounds; ++r) {
        // Stride so each key sees solo epochs (doorway winner path) and
        // contended epochs (doorway loser + claim-conflict paths) — all
        // three exits of the patched coroutine run continuously.
        const std::string key = "soak/" + std::to_string((i + r) % keys);
        const auto result = session.try_acquire(key);
        if (result.won) {
          wins.fetch_add(1);
          session.release(key, result.epoch);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Liveness across the churn: solo epochs must keep being won (a
  // doorway that stopped admitting anyone would drive this to ~0).
  EXPECT_GT(wins.load(), 0u);
  const auto report = service.report();
  const auto idx = static_cast<std::size_t>(strategy_kind::doorway_only);
  EXPECT_EQ(report.strategies[idx].acquires,
            static_cast<std::uint64_t>(sessions) * rounds);
  EXPECT_EQ(report.strategies[idx].wins, wins.load());
}

// ---------------------------------------------------------------------
// Adaptive-specific behaviour.

TEST(SvcAdaptive, UncontendedAcquiresRideTheFastPath) {
  svc::service service({.nodes = 4,
                        .shards = 2,
                        .seed = 3,
                        .default_strategy = strategy_kind::adaptive});
  auto session = service.connect();
  constexpr int cycles = 50;
  for (int i = 0; i < cycles; ++i) {
    const auto result = session.try_acquire("quiet");
    ASSERT_TRUE(result.won) << "cycle " << i;
    session.release("quiet", result.epoch);
  }
  const auto report = service.report();
  // Epoch 0 has no contention history yet; every later epoch observed a
  // single acquirer and must skip the distributed protocol entirely.
  EXPECT_EQ(report.fast_path.hits, static_cast<std::uint64_t>(cycles));
  EXPECT_EQ(report.fast_path.conflicts, 0u);
  EXPECT_GT(report.fast_path.hit_rate(), 0.99);
  const auto idx = static_cast<std::size_t>(strategy_kind::adaptive);
  EXPECT_EQ(report.strategies[idx].wins, static_cast<std::uint64_t>(cycles));
}

TEST(SvcAdaptive, FastPathResultIsMarkedAndLeased) {
  svc::service service({.nodes = 2,
                        .shards = 2,
                        .lease_ttl_ms = 60'000,
                        .sweep_interval_ms = 30'000,
                        .default_strategy = strategy_kind::adaptive});
  auto session = service.connect();
  const auto result = session.try_acquire("marked");
  ASSERT_TRUE(result.won);
  EXPECT_TRUE(result.fast_path);
  // Fast-path grants carry a real lease deadline, renewable and fenced
  // exactly like protocol grants.
  EXPECT_LT(result.lease_deadline,
            std::chrono::steady_clock::time_point::max());
  EXPECT_EQ(session.renew("marked", result.epoch), svc::lease_status::ok);
  EXPECT_EQ(session.release("marked", result.epoch), svc::lease_status::ok);
}

TEST(SvcAdaptive, ContentionForcesTheProtocolPath) {
  constexpr int sessions = 4;
  svc::service service({.nodes = sessions,
                        .shards = 2,
                        .seed = 41,
                        .default_strategy = strategy_kind::adaptive});
  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());

  // Several rounds of contended blocking handoff on one key: holders
  // keep the key long enough that the rivals' attempts register in the
  // same epoch, so the contention estimate is >1 and later epochs must
  // be decided by the distributed protocol, not the CAS.
  constexpr int rounds = 3;
  std::atomic<int> entries{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      auto& session = handles[static_cast<std::size_t>(i)];
      for (int r = 0; r < rounds; ++r) {
        const auto result = session.acquire("busy");
        EXPECT_TRUE(result.won);
        entries.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        session.release("busy", result.epoch);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(entries.load(), sessions * rounds);

  const auto report = service.report();
  // The fast path may only have taken the very first uncontended epochs;
  // contended epochs ran real elections (visible as protocol messages).
  EXPECT_LT(report.fast_path.hits, report.wins);
  EXPECT_GT(report.total_messages, 0u);
}

TEST(SvcStrategyRouting, PerKeyOverrideBeatsDefault) {
  svc::service_config config{.nodes = 4, .shards = 2, .seed = 19};
  config.default_strategy = strategy_kind::full;
  config.key_strategies["fast/key"] = strategy_kind::doorway_only;
  svc::service service(std::move(config));
  auto session = service.connect();

  ASSERT_TRUE(session.try_acquire("plain/key").won);
  ASSERT_TRUE(session.try_acquire("fast/key").won);

  const auto report = service.report();
  const auto full_idx = static_cast<std::size_t>(strategy_kind::full);
  const auto door_idx = static_cast<std::size_t>(strategy_kind::doorway_only);
  EXPECT_EQ(report.strategies[full_idx].acquires, 1u);
  EXPECT_EQ(report.strategies[full_idx].wins, 1u);
  EXPECT_EQ(report.strategies[door_idx].acquires, 1u);
  EXPECT_EQ(report.strategies[door_idx].wins, 1u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"doorway_only\":{\"acquires\":1,\"wins\":1}"),
            std::string::npos);
}

TEST(SvcStrategyRouting, ParseAndPrintRoundTrip) {
  for (int k = 0; k < election::strategy_kind_count; ++k) {
    const auto kind = static_cast<strategy_kind>(k);
    const auto parsed = election::parse_strategy(election::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(election::parse_strategy("tournament").has_value());
}

// ---------------------------------------------------------------------
// Election-id exhaustion: fail fast, never alias var_id.instance.

using SvcRegistryDeathTest = ::testing::Test;

TEST(SvcRegistryDeathTest, InstanceIdExhaustionFailsFastBeforeAliasing) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Start two ids short of the guard: two allocations succeed, the third
  // must abort with a clear message instead of wrapping into the ids of
  // long-decided instances.
  svc::instance_registry registry(
      /*shard_count=*/1, svc::instance_registry::instance_id_limit - 2);
  EXPECT_EQ(registry.remaining_instance_ids(), 2u);
  (void)registry.current("a");
  (void)registry.current("b");
  EXPECT_EQ(registry.remaining_instance_ids(), 0u);
  EXPECT_DEATH((void)registry.current("c"), "election-id space exhausted");
}

TEST(SvcRegistryDeathTest, EpochBumpAllocationIsGuardedToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  svc::instance_registry registry(
      /*shard_count=*/1, svc::instance_registry::instance_id_limit - 1);
  (void)registry.current("a");
  const auto deadline = registry.claim_win(
      "a", /*epoch=*/0, /*session=*/0,
      svc::instance_registry::clock::duration::zero());
  ASSERT_TRUE(deadline.has_value());
  // The release's epoch bump needs a fresh instance id — none left.
  EXPECT_DEATH((void)registry.release("a", /*session=*/0),
               "election-id space exhausted");
}

TEST(SvcRegistry, FreshRegistryHasPlentyOfIds) {
  svc::instance_registry registry(/*shard_count=*/2);
  // The default starting id leaves (almost) the whole 32-bit namespace.
  EXPECT_GT(registry.remaining_instance_ids(), 4'000'000'000ull);
}

}  // namespace
}  // namespace elect
