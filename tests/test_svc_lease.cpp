// Lease-based ownership tests: crash-tolerant failover via TTL expiry,
// epoch fencing of zombie release/renew, renewals keeping a lease alive,
// graceful disconnect, the stop()-vs-acquire race (rejected results, no
// abort), pure epoch waiters not creating registry state, and the
// participated-map eviction pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "svc/registry.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using namespace std::chrono_literals;

// The acceptance scenario: a winner "crashes" (never releases). After the
// TTL the sweeper force-releases, a blocked acquirer takes over, and the
// zombie's stale-epoch release/renew are rejected gracefully — no abort,
// no double leader.
TEST(SvcLease, ExpiryFailsOverAndZombieIsFenced) {
  // TTL is deliberately generous relative to the sweep interval: after
  // the heir wins it must get through a handful of assertions and its
  // own release before the *next* expiry — a tight TTL would flake under
  // TSan/CI slowdowns.
  svc::service service(svc::service_config{.nodes = 4,
                                           .shards = 2,
                                           .seed = 7,
                                           .lease_ttl_ms = 400,
                                           .sweep_interval_ms = 20});
  auto zombie = service.connect();
  auto heir = service.connect();

  const auto won = zombie.try_acquire("crashy");
  ASSERT_TRUE(won.won);
  ASSERT_EQ(won.epoch, 0u);
  ASSERT_LT(won.lease_deadline, std::chrono::steady_clock::time_point::max());

  // The heir blocks in acquire(); only lease expiry can unblock it
  // because the zombie never calls release().
  svc::acquire_result heir_result;
  std::thread blocked([&] { heir_result = heir.acquire("crashy"); });
  blocked.join();

  EXPECT_TRUE(heir_result.won);
  EXPECT_GE(heir_result.epoch, 1u);
  EXPECT_EQ(service.registry().leader_of("crashy"), heir.id());

  // The zombie wakes up and tries to act on its long-expired lease.
  EXPECT_EQ(zombie.release("crashy", won.epoch),
            svc::lease_status::stale_epoch);
  EXPECT_EQ(zombie.renew("crashy", won.epoch), svc::lease_status::stale_epoch);
  // The unfenced release is also rejected: the zombie is not the holder.
  EXPECT_EQ(zombie.release("crashy"), svc::lease_status::not_leader);
  // Fencing left the heir untouched.
  EXPECT_EQ(service.registry().leader_of("crashy"), heir.id());

  const auto report = service.report();
  EXPECT_GE(report.expirations, 1u);
  EXPECT_GE(report.stale_fences, 3u);
  EXPECT_EQ(heir.release("crashy", heir_result.epoch), svc::lease_status::ok);
}

TEST(SvcLease, RenewKeepsLeaseAliveAcrossManyTtls) {
  // The background sweeper is parked on a huge interval; sweeps are
  // driven manually right after each renew, so the test stays
  // deterministic even when CI (or TSan) stalls this thread: only a
  // >250ms stall inside the two-line renew->sweep gap could flake it.
  svc::service service(svc::service_config{.nodes = 2,
                                           .shards = 2,
                                           .seed = 3,
                                           .lease_ttl_ms = 250,
                                           .sweep_interval_ms = 60'000});
  auto holder = service.connect();
  auto rival = service.connect();

  const auto won = holder.try_acquire("steady");
  ASSERT_TRUE(won.won);

  // Hold across many renew/sweep cycles; a renewed lease never expires.
  for (int i = 0; i < 16; ++i) {
    std::this_thread::sleep_for(10ms);
    ASSERT_EQ(holder.renew("steady", won.epoch), svc::lease_status::ok)
        << "renewal " << i;
    EXPECT_EQ(service.sweep_now(), 0u) << "renewal " << i;
    EXPECT_EQ(service.registry().leader_of("steady"), holder.id());
  }
  // A rival contending mid-hold loses: the instance is decided.
  EXPECT_FALSE(rival.try_acquire("steady").won);

  const auto report = service.report();
  EXPECT_EQ(report.expirations, 0u);
  EXPECT_GE(report.renewals, 16u);
  EXPECT_EQ(holder.release("steady"), svc::lease_status::ok);
}

// The fenced-release overload protects a session from its own past: if
// the same session re-acquires after an expiry, a release quoting the old
// epoch must not drop the new lease.
TEST(SvcLease, StaleEpochFromSameSessionCannotReleaseNewLease) {
  // Background sweeper parked on a huge interval; expiry is driven
  // manually via sweep_now() so the second lease cannot be expired out
  // from under the final assertions by a slow/loaded machine.
  svc::service service(svc::service_config{.nodes = 2,
                                           .shards = 2,
                                           .seed = 9,
                                           .lease_ttl_ms = 40,
                                           .sweep_interval_ms = 60'000});
  auto session = service.connect();

  const auto first = session.try_acquire("phoenix");
  ASSERT_TRUE(first.won);
  // Let the lease lapse, then sweep it explicitly.
  std::this_thread::sleep_for(60ms);
  ASSERT_EQ(service.sweep_now(), 1u);
  ASSERT_EQ(service.registry().leader_of("phoenix"), -1);

  const auto second = session.acquire("phoenix");
  ASSERT_TRUE(second.won);
  ASSERT_GT(second.epoch, first.epoch);

  EXPECT_EQ(session.release("phoenix", first.epoch),
            svc::lease_status::stale_epoch);
  EXPECT_EQ(service.registry().leader_of("phoenix"), session.id());
  EXPECT_EQ(session.release("phoenix", second.epoch), svc::lease_status::ok);
}

TEST(SvcLease, DisconnectReleasesEverythingHeld) {
  svc::service service(svc::service_config{.nodes = 4, .shards = 4});
  auto leaver = service.connect();
  auto other = service.connect();

  ASSERT_TRUE(leaver.try_acquire("d/0").won);
  ASSERT_TRUE(leaver.try_acquire("d/1").won);
  ASSERT_TRUE(other.try_acquire("d/2").won);

  EXPECT_EQ(leaver.disconnect(), 2u);
  EXPECT_EQ(service.registry().leader_of("d/0"), -1);
  EXPECT_EQ(service.registry().leader_of("d/1"), -1);
  // Someone else's lease is untouched.
  EXPECT_EQ(service.registry().leader_of("d/2"), other.id());
  // The keys are immediately electable again.
  EXPECT_TRUE(other.try_acquire("d/0").won);
}

TEST(SvcLease, LeaseDeadlineVisibleAndInfiniteWithoutTtl) {
  svc::service service(svc::service_config{.nodes = 2, .shards = 2});
  auto session = service.connect();
  EXPECT_FALSE(
      service.registry().lease_deadline_of("forever").has_value());
  const auto won = session.try_acquire("forever");
  ASSERT_TRUE(won.won);
  // lease_ttl_ms == 0: the lease never expires and sweeps are no-ops.
  EXPECT_EQ(won.lease_deadline, std::chrono::steady_clock::time_point::max());
  const auto deadline = service.registry().lease_deadline_of("forever");
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(*deadline, std::chrono::steady_clock::time_point::max());
  EXPECT_EQ(service.sweep_now(), 0u);
  EXPECT_EQ(service.registry().leader_of("forever"), session.id());
}

// ---------------------------------------------------------------------
// Satellite: try_acquire_for — bounded blocking acquires.

TEST(SvcTimedAcquire, TimesOutWhileHeldThenSucceedsAfterRelease) {
  svc::service service(svc::service_config{.nodes = 2, .shards = 2, .seed = 6});
  auto holder = service.connect();
  auto waiter = service.connect();
  const auto held = holder.try_acquire("bounded");
  ASSERT_TRUE(held.won);

  // The key is held and never released within the timeout: the waiter
  // must come back with timed_out instead of blocking forever (the old
  // choice was try-once or wait-forever).
  const auto deadline_miss = waiter.try_acquire_for("bounded", 50ms);
  EXPECT_FALSE(deadline_miss.won);
  EXPECT_TRUE(deadline_miss.timed_out);
  EXPECT_FALSE(deadline_miss.rejected);
  EXPECT_EQ(service.registry().leader_of("bounded"), holder.id());

  // After a release the same call wins well within its bound.
  ASSERT_EQ(holder.release("bounded", held.epoch), svc::lease_status::ok);
  const auto won = waiter.try_acquire_for("bounded", 10'000ms);
  EXPECT_TRUE(won.won);
  EXPECT_FALSE(won.timed_out);
}

TEST(SvcTimedAcquire, WakesWhenHolderReleasesMidWait) {
  svc::service service(svc::service_config{.nodes = 2, .shards = 2, .seed = 8});
  auto holder = service.connect();
  auto waiter = service.connect();
  const auto held = holder.try_acquire("midwait");
  ASSERT_TRUE(held.won);

  svc::acquire_result result;
  std::atomic<bool> entered{false};
  std::thread blocked([&] {
    entered.store(true);
    result = waiter.try_acquire_for("midwait", 60'000ms);
  });
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(20ms);
  ASSERT_EQ(holder.release("midwait", held.epoch), svc::lease_status::ok);
  blocked.join();
  EXPECT_TRUE(result.won);
  EXPECT_FALSE(result.timed_out);
}

TEST(SvcTimedAcquire, StopWakesTimedWaiterAsRejected) {
  svc::service service(svc::service_config{.nodes = 2, .shards = 2, .seed = 12});
  auto holder = service.connect();
  auto waiter = service.connect();
  ASSERT_TRUE(holder.try_acquire("stopped").won);

  // A timed waiter parked on a long timeout must be woken by stop() and
  // come back rejected immediately — not sleep out its full bound.
  svc::acquire_result result;
  std::atomic<bool> entered{false};
  std::thread blocked([&] {
    entered.store(true);
    result = waiter.try_acquire_for("stopped", 60'000ms);
  });
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(20ms);  // let it park on the epoch CV
  const auto before = std::chrono::steady_clock::now();
  service.stop();
  blocked.join();
  EXPECT_LT(std::chrono::steady_clock::now() - before, 10s);
  EXPECT_TRUE(result.rejected);
  EXPECT_FALSE(result.won);
  EXPECT_FALSE(result.timed_out);
}

TEST(SvcTimedAcquire, ZeroTimeoutIsASingleAttempt) {
  svc::service service(svc::service_config{.nodes = 2, .shards = 2});
  auto holder = service.connect();
  auto waiter = service.connect();
  ASSERT_TRUE(holder.try_acquire("oneshot").won);
  const auto result = waiter.try_acquire_for("oneshot", 0ms);
  EXPECT_FALSE(result.won);
  EXPECT_TRUE(result.timed_out);
}

// ---------------------------------------------------------------------
// Satellite: stop() racing acquires must reject, not abort or hang.

TEST(SvcStop, ConcurrentStopRejectsAcquiresGracefully) {
  svc::service service(svc::service_config{.nodes = 4, .shards = 4, .seed = 2});
  constexpr int client_count = 8;
  std::vector<svc::service::session> sessions;
  for (int c = 0; c < client_count; ++c) sessions.push_back(service.connect());

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < client_count; ++c) {
    clients.emplace_back([&, c] {
      auto& session = sessions[static_cast<std::size_t>(c)];
      while (!go.load()) std::this_thread::yield();
      // Loop until the stop() below turns us away — the rejected result
      // is the only exit, so a hang or abort here is the regression.
      for (int op = 0;; ++op) {
        const std::string key = "s/" + std::to_string(op % 16);
        const auto result = session.try_acquire(key);
        if (result.rejected) {
          rejected.fetch_add(1);
          // Stopped for good: every later call must also be rejected.
          EXPECT_TRUE(session.try_acquire("after-stop").rejected);
          return;
        }
        served.fetch_add(1);
        if (result.won) session.release(key);
      }
    });
  }
  go.store(true);
  // Let the clients get going, then yank the service out from under them.
  std::this_thread::sleep_for(5ms);
  service.stop();
  for (auto& t : clients) t.join();

  EXPECT_GT(rejected.load(), 0u);
  const auto report = service.report();
  EXPECT_EQ(report.acquires, served.load());
  EXPECT_GE(report.rejected_acquires, rejected.load());
}

TEST(SvcStop, BlockedAcquireWakesRejectedOnStop) {
  svc::service service(svc::service_config{.nodes = 2, .shards = 2, .seed = 4});
  auto holder = service.connect();
  auto waiter = service.connect();
  ASSERT_TRUE(holder.try_acquire("held").won);

  svc::acquire_result blocked_result;
  std::atomic<bool> entered{false};
  std::thread blocked([&] {
    entered.store(true);
    blocked_result = waiter.acquire("held");  // loses, sleeps on the epoch
  });
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(20ms);  // give it time to park on the CV
  service.stop();
  blocked.join();

  EXPECT_TRUE(blocked_result.rejected);
  EXPECT_FALSE(blocked_result.won);
}

// ---------------------------------------------------------------------
// Satellite: pure epoch waiters must not create key state.

TEST(SvcRegistry, WaiterOnUnknownKeyCreatesNoState) {
  svc::service service(svc::service_config{.nodes = 2, .shards = 2});
  auto session = service.connect();
  auto& registry = service.registry();
  ASSERT_EQ(registry.key_count(), 0u);
  EXPECT_FALSE(registry.peek("ghost").has_value());

  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    registry.wait_for_epoch_above("ghost", 0);
    woke.store(true);
  });
  std::this_thread::sleep_for(30ms);
  // The waiter parked on a never-acquired key: no state, no instance id
  // burned, and it is still asleep (implicit epoch 0 is not > 0).
  EXPECT_EQ(registry.key_count(), 0u);
  EXPECT_FALSE(woke.load());

  // First real acquire creates the key at epoch 0; the release bumps to
  // epoch 1 and must wake the waiter even though it parked pre-creation.
  ASSERT_TRUE(session.try_acquire("ghost").won);
  EXPECT_EQ(session.release("ghost"), svc::lease_status::ok);
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(registry.key_count(), 1u);
}

// ---------------------------------------------------------------------
// Satellite: the per-worker participated map must not grow linearly with
// key churn forever.

TEST(SvcService, ParticipatedMapBoundedUnderKeyChurn) {
  constexpr std::size_t threshold = 64;
  svc::service service(svc::service_config{
      .nodes = 2, .shards = 4, .participated_prune_threshold = threshold});
  auto session = service.connect();

  // Churn through many more distinct keys than the threshold; each is
  // acquired once, released, and never touched again — exactly the
  // workload that used to leak one entry per key per node forever.
  constexpr int churned_keys = 1000;
  for (int k = 0; k < churned_keys; ++k) {
    const std::string key = "churn/" + std::to_string(k);
    ASSERT_TRUE(session.try_acquire(key).won);
    session.release(key);
  }

  const auto report = service.report();
  // Released keys' instances no longer match the registry, so the prune
  // pass evicts them: the map stays around the threshold instead of
  // holding all churned keys.
  EXPECT_LE(report.participated_entries, threshold + 1)
      << "participated map grew linearly with churned keys";
  EXPECT_EQ(report.wins, static_cast<std::uint64_t>(churned_keys));
}

// A key whose instance is still live must survive the prune pass (its
// entry is what blocks a second invocation of a live instance).
TEST(SvcService, PruneKeepsLiveInstanceEntries) {
  constexpr std::size_t threshold = 8;
  constexpr int sessions = 4;
  svc::service service(svc::service_config{
      .nodes = 1, .shards = 2, .participated_prune_threshold = threshold});
  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());

  // Session 0 holds "pinned" (instance stays current → entry must stay).
  ASSERT_TRUE(handles[0].try_acquire("pinned").won);
  // Churn well past the threshold to force prune passes.
  for (int k = 0; k < 64; ++k) {
    const std::string key = "c/" + std::to_string(k);
    ASSERT_TRUE(handles[1].try_acquire(key).won);
    handles[1].release(key);
  }
  // All sessions share the single node: every later acquire of "pinned"
  // must still lose locally via the participated entry, not re-invoke
  // the decided instance.
  for (int i = 1; i < sessions; ++i) {
    EXPECT_FALSE(handles[static_cast<std::size_t>(i)].try_acquire("pinned").won);
  }
  EXPECT_EQ(service.registry().leader_of("pinned"), handles[0].id());
}

}  // namespace
}  // namespace elect
