// Node-level mechanics: protocol attachment rules, misuse detection,
// message descriptions and wire-byte accounting.
#include <gtest/gtest.h>

#include "adversary/basic.hpp"
#include "engine/message.hpp"
#include "engine/node.hpp"
#include "sim/kernel.hpp"

namespace elect {
namespace {

engine::task<std::int64_t> trivial(engine::node& self) {
  const engine::var_id var{engine::var_family::test_i64_array, 0, 0};
  auto delta = self.stage_own_cell<std::int64_t>(var, 1);
  co_await self.propagate(var, delta);
  co_return 0;
}

// A buggy protocol that starts a second communicate while one is pending
// (it co_awaits the *second* awaitable only). The engine must refuse.
engine::task<std::int64_t> double_communicate(engine::node& self) {
  const engine::var_id var{engine::var_family::test_i64_array, 0, 0};
  auto delta = self.stage_own_cell<std::int64_t>(var, 1);
  auto first = self.propagate(var, delta);   // begins op 1
  auto second = self.propagate(var, delta);  // must abort here
  co_await second;
  co_await first;
  co_return 0;
}

TEST(Node, AttachTwiceAborts) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 2, .seed = 1}, adv);
  k.attach(0, trivial(k.node_at(0)));
  EXPECT_DEATH(k.node_at(0).attach_protocol(trivial(k.node_at(0))),
               "already has a protocol");
}

TEST(Node, OverlappingCommunicateAborts) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 2, .seed = 1}, adv);
  k.attach(0, double_communicate(k.node_at(0)));
  EXPECT_DEATH(
      {
        while (!k.node_at(0).protocol_done()) {
          if (!k.steppable().empty()) {
            k.execute(sim::action::step(k.steppable().front()));
          } else {
            k.execute(sim::action::deliver(k.in_flight().ids().front()));
          }
        }
      },
      "communicate call while another is pending");
}

TEST(Node, EraseResultPreservesValue) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 1, .seed = 1}, adv);
  struct probe_values {
    static engine::task<std::int64_t> value_7(engine::node& self) {
      const engine::var_id var{engine::var_family::test_i64_array, 1, 0};
      auto delta = self.stage_own_cell<std::int64_t>(var, 7);
      co_await self.propagate(var, delta);
      co_return 7;
    }
  };
  k.attach(0, probe_values::value_7(k.node_at(0)));
  ASSERT_TRUE(k.run().completed);
  EXPECT_EQ(k.result_of(0), 7);
}

TEST(Node, WaitingForQuorumVisible) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 3, .seed = 2}, adv);
  k.attach(0, trivial(k.node_at(0)));
  EXPECT_FALSE(k.node_at(0).waiting_for_quorum());
  k.execute(sim::action::step(0));  // starts; sends fan-out; suspends
  EXPECT_TRUE(k.node_at(0).waiting_for_quorum());
  ASSERT_TRUE(k.run().completed);
  EXPECT_FALSE(k.node_at(0).waiting_for_quorum());
}

TEST(Message, DescribeAndClassify) {
  engine::message propagate{0, 1, 42,
                            engine::propagate_request{
                                {engine::var_family::door, 3, 0},
                                engine::flag_delta{}}};
  EXPECT_TRUE(propagate.is_request());
  EXPECT_FALSE(propagate.is_reply());
  ASSERT_NE(propagate.request_var(), nullptr);
  EXPECT_EQ(propagate.request_var()->family, engine::var_family::door);
  EXPECT_NE(engine::describe(propagate).find("propagate"),
            std::string::npos);

  engine::message ack{1, 0, 42, engine::ack_reply{}};
  EXPECT_TRUE(ack.is_reply());
  EXPECT_EQ(ack.request_var(), nullptr);
  EXPECT_NE(engine::describe(ack).find("ack"), std::string::npos);

  engine::message collect{0, 1, 43,
                          engine::collect_request{
                              {engine::var_family::contended, 1, 0}}};
  EXPECT_TRUE(collect.is_request());
  EXPECT_NE(engine::describe(collect).find("collect"), std::string::npos);
}

TEST(Message, WireBytesOrdering) {
  const engine::message ack{1, 0, 1, engine::ack_reply{}};
  engine::owned_array<engine::het_status> big_array(64);
  for (process_id j = 0; j < 64; ++j) {
    big_array.merge_cell(
        j, {1, engine::het_status{engine::pp_status::low_pri,
                                  std::vector<process_id>(32, 1)}});
  }
  const engine::message reply{1, 0, 1, engine::collect_reply{big_array}};
  EXPECT_LT(ack.wire_bytes(), reply.wire_bytes());
  EXPECT_GT(reply.wire_bytes(), 64u * 32u * sizeof(process_id));
}

TEST(Node, RngStreamsDifferAcrossNodes) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 3, .seed = 9}, adv);
  const auto a = k.node_at(0).rng().next_u64();
  const auto b = k.node_at(1).rng().next_u64();
  const auto c = k.node_at(2).rng().next_u64();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Node, ProbeDefaults) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 2, .seed = 1}, adv);
  const engine::debug_probe& probe = k.node_at(0).probe();
  EXPECT_EQ(probe.coin, -1);
  EXPECT_EQ(probe.round, -1);
  EXPECT_EQ(probe.phase, -1);
  EXPECT_EQ(probe.contending_for, -1);
}

}  // namespace
}  // namespace elect
