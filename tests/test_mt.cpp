// Multithreaded runtime stress tests: the same protocol coroutines on
// real threads, with the OS as the scheduler. Safety invariants must hold
// under every interleaving these runs produce.
#include <gtest/gtest.h>

#include <set>

#include "election/leader_elect.hpp"
#include "election/tournament.hpp"
#include "engine/node.hpp"
#include "mt/cluster.hpp"
#include "renaming/renaming.hpp"

namespace elect {
namespace {

using election::tas_result;

constexpr std::int64_t win_value =
    static_cast<std::int64_t>(tas_result::win);

TEST(MtCluster, ElectionUniqueWinner) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    mt::cluster cluster(8, seed);
    for (process_id pid = 0; pid < 8; ++pid) {
      cluster.attach(pid, [](engine::node& node) {
        return engine::erase_result(election::leader_elect(node));
      });
    }
    cluster.start();
    cluster.wait();
    int winners = 0;
    for (process_id pid = 0; pid < 8; ++pid) {
      winners += cluster.result_of(pid) == win_value ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "seed " << seed;
    EXPECT_GT(cluster.total_messages(), 0u);
  }
}

TEST(MtCluster, SoloParticipantWins) {
  mt::cluster cluster(4, 7);
  cluster.attach(2, [](engine::node& node) {
    return engine::erase_result(election::leader_elect(node));
  });
  cluster.start();
  cluster.wait();
  EXPECT_EQ(cluster.result_of(2), win_value);
}

TEST(MtCluster, PartialParticipation) {
  mt::cluster cluster(12, 3);
  for (process_id pid = 0; pid < 5; ++pid) {
    cluster.attach(pid, [](engine::node& node) {
      return engine::erase_result(election::leader_elect(node));
    });
  }
  cluster.start();
  cluster.wait();
  int winners = 0;
  for (process_id pid = 0; pid < 5; ++pid) {
    winners += cluster.result_of(pid) == win_value ? 1 : 0;
  }
  EXPECT_EQ(winners, 1);
}

TEST(MtCluster, TournamentUniqueWinner) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    mt::cluster cluster(8, seed);
    for (process_id pid = 0; pid < 8; ++pid) {
      cluster.attach(pid, [](engine::node& node) {
        return engine::erase_result(
            election::tournament_elect(node, election::tournament_params{}));
      });
    }
    cluster.start();
    cluster.wait();
    int winners = 0;
    for (process_id pid = 0; pid < 8; ++pid) {
      winners += cluster.result_of(pid) == win_value ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "seed " << seed;
  }
}

TEST(MtCluster, RenamingUniqueNames) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const int n = 6;
    mt::cluster cluster(n, seed);
    for (process_id pid = 0; pid < n; ++pid) {
      cluster.attach(pid, [](engine::node& node) {
        return renaming::get_name(node, renaming::renaming_params{});
      });
    }
    cluster.start();
    cluster.wait();
    std::set<std::int64_t> names;
    for (process_id pid = 0; pid < n; ++pid) {
      const std::int64_t name = cluster.result_of(pid);
      ASSERT_GE(name, 0);
      ASSERT_LT(name, n);
      ASSERT_TRUE(names.insert(name).second)
          << "duplicate name " << name << " (seed " << seed << ")";
    }
  }
}

TEST(MtCluster, RepeatedElectionsStress) {
  // Many short elections back-to-back shake out shutdown/startup races.
  for (std::uint64_t round = 0; round < 20; ++round) {
    mt::cluster cluster(4, 1000 + round);
    for (process_id pid = 0; pid < 4; ++pid) {
      cluster.attach(pid, [](engine::node& node) {
        return engine::erase_result(election::leader_elect(node));
      });
    }
    cluster.start();
    cluster.wait();
    int winners = 0;
    for (process_id pid = 0; pid < 4; ++pid) {
      winners += cluster.result_of(pid) == win_value ? 1 : 0;
    }
    ASSERT_EQ(winners, 1) << "round " << round;
  }
}

}  // namespace
}  // namespace elect
