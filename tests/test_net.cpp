// elect::net tests: wire codec round-trips and incremental framing,
// then the full TCP loop — remote sessions over a loopback server,
// unique winner across remote clients, out-of-order pipelined
// completion, backpressure, clean remote double-release verdicts, the
// metrics fetch, and the acceptance crash scenario: kill a client
// socket mid-lease and prove the key is re-grantable via the
// disconnect-on-close hook (well inside the PR 2 TTL + sweep bound).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/nemesis.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------
// Wire codec.

TEST(NetWire, RequestRoundTripsThroughFrameAndCodec) {
  net::wire::request r;
  r.id = 0x0123456789ABCDEFull;
  r.kind = net::wire::op::try_acquire_for;
  r.key = "locks/compactor";
  r.epoch = 42;
  r.timeout_ms = 1500;

  const auto frame = net::wire::encode_request(r);
  // Frame = 4-byte little-endian length prefix + body.
  ASSERT_GT(frame.size(), 4u);
  const std::uint32_t length = frame[0] | (frame[1] << 8) | (frame[2] << 16) |
                               (static_cast<std::uint32_t>(frame[3]) << 24);
  ASSERT_EQ(frame.size(), 4u + length);

  const std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  const auto decoded = net::wire::decode_request(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, r.id);
  EXPECT_EQ(decoded->kind, r.kind);
  EXPECT_EQ(decoded->key, r.key);
  EXPECT_EQ(decoded->epoch, r.epoch);
  EXPECT_EQ(decoded->timeout_ms, r.timeout_ms);
}

TEST(NetWire, ResponseRoundTripsWithFlagsAndBody) {
  net::wire::response r;
  r.id = 7;
  r.kind = net::wire::op::metrics;
  r.result = net::wire::status::ok;
  r.flags = net::wire::flag_won | net::wire::flag_fast_path;
  r.epoch = 9;
  r.lease_remaining_ms = net::wire::lease_forever;
  r.body = "{\"acquires\":1}";

  const auto frame = net::wire::encode_response(r);
  const std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  const auto decoded = net::wire::decode_response(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 7u);
  EXPECT_TRUE(decoded->won());
  EXPECT_TRUE(decoded->fast_path());
  EXPECT_EQ(decoded->lease_remaining_ms, net::wire::lease_forever);
  EXPECT_EQ(decoded->body, r.body);
}

TEST(NetWire, DecodeRejectsTruncationTrailingGarbageAndUnknownOps) {
  const auto frame = net::wire::encode_request(net::wire::make_hello_request());
  std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());

  std::vector<std::uint8_t> truncated(body.begin(), body.end() - 1);
  EXPECT_FALSE(net::wire::decode_request(truncated).has_value());

  std::vector<std::uint8_t> trailing = body;
  trailing.push_back(0);
  EXPECT_FALSE(net::wire::decode_request(trailing).has_value());

  std::vector<std::uint8_t> bad_op = body;
  bad_op[8] = 250;  // op byte follows the u64 id
  EXPECT_FALSE(net::wire::decode_request(bad_op).has_value());
}

TEST(NetWire, FrameReaderReassemblesByteDribbleAndPipelinedBursts) {
  net::wire::request a;
  a.id = 1;
  a.kind = net::wire::op::try_acquire;
  a.key = "k/a";
  net::wire::request b;
  b.id = 2;
  b.kind = net::wire::op::release;
  b.key = "k/b";

  std::vector<std::uint8_t> stream;
  for (const auto& r : {a, b}) {
    const auto frame = net::wire::encode_request(r);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  // Feed one byte at a time: both frames must reassemble exactly.
  net::wire::frame_reader dribble;
  std::vector<net::wire::request> seen;
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(dribble.feed(&byte, 1));
    while (auto body = dribble.next()) {
      const auto req = net::wire::decode_request(*body);
      ASSERT_TRUE(req.has_value());
      seen.push_back(*req);
    }
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].id, 1u);
  EXPECT_EQ(seen[0].key, "k/a");
  EXPECT_EQ(seen[1].id, 2u);
  EXPECT_EQ(seen[1].key, "k/b");

  // Feed the whole burst at once: same two frames.
  net::wire::frame_reader burst;
  ASSERT_TRUE(burst.feed(stream.data(), stream.size()));
  int frames = 0;
  while (burst.next().has_value()) ++frames;
  EXPECT_EQ(frames, 2);
}

TEST(NetWire, OversizedFramePoisonsTheReader) {
  // Length prefix claiming more than max_frame_bytes: corruption or a
  // hostile peer; the reader must refuse and stay refused.
  const std::uint32_t huge = net::wire::max_frame_bytes + 1;
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  net::wire::frame_reader reader;
  EXPECT_FALSE(reader.feed(prefix, sizeof prefix));
  EXPECT_TRUE(reader.poisoned());
  const std::uint8_t byte = 0;
  EXPECT_FALSE(reader.feed(&byte, 1));
  EXPECT_FALSE(reader.next().has_value());
}

// ---------------------------------------------------------------------
// End-to-end over loopback.

struct remote_stack {
  explicit remote_stack(svc::service_config service_config = {.nodes = 4,
                                                              .shards = 2},
                        net::server_config server_config = {})
      : service(std::move(service_config)),
        server(service, std::move(server_config)) {}

  [[nodiscard]] std::unique_ptr<net::client> connect() const {
    return std::make_unique<net::client>("127.0.0.1", server.port());
  }

  svc::service service;
  net::server server;
};

TEST(NetServer, StartsOnEphemeralPortAndStopsIdempotently) {
  remote_stack stack;
  ASSERT_TRUE(stack.server.listening());
  EXPECT_GT(stack.server.port(), 0);
  stack.server.stop();
  stack.server.stop();
}

TEST(NetClient, HandshakeConnectsAndBadPortFails) {
  remote_stack stack;
  ASSERT_TRUE(stack.server.listening());
  const auto good = stack.connect();
  EXPECT_TRUE(good->connected());

  // A port nobody listens on: constructor fails cleanly, calls degrade
  // — and report the transport verdict, not a fencing verdict: the
  // connection was never established, which is a sever, not a close().
  net::client bad("127.0.0.1", 1);
  EXPECT_FALSE(bad.connected());
  EXPECT_EQ(bad.reason(), net::close_reason::severed);
  const auto attempt = bad.try_acquire("x");
  EXPECT_TRUE(attempt.rejected);
  EXPECT_TRUE(attempt.connection_lost);
  EXPECT_EQ(bad.release("x"), svc::lease_status::connection_lost);
}

TEST(NetRemote, SoloAcquireWinsRenewsAndReleases) {
  remote_stack stack({.nodes = 4, .shards = 2, .lease_ttl_ms = 60'000,
                      .sweep_interval_ms = 30'000});
  const auto client = stack.connect();
  ASSERT_TRUE(client->connected());

  const auto won = client->try_acquire("remote/solo");
  ASSERT_TRUE(won.won);
  EXPECT_EQ(won.epoch, 0u);
  EXPECT_FALSE(won.rejected);
  // The lease deadline came over the wire as remaining-ms and landed on
  // this clock in the right ballpark.
  const auto remaining = won.lease_deadline - std::chrono::steady_clock::now();
  EXPECT_GT(remaining, 30s);
  EXPECT_LT(remaining, 120s);

  EXPECT_EQ(client->renew("remote/solo", won.epoch), svc::lease_status::ok);
  EXPECT_EQ(client->release("remote/solo", won.epoch), svc::lease_status::ok);
  // Re-electable immediately at the next epoch.
  const auto again = client->try_acquire("remote/solo");
  ASSERT_TRUE(again.won);
  EXPECT_EQ(again.epoch, 1u);
  EXPECT_EQ(client->release("remote/solo", again.epoch),
            svc::lease_status::ok);
}

TEST(NetRemote, UniqueWinnerAcrossRemoteClients) {
  // The paper's test-and-set invariant, now across processes' worth of
  // state: every client is its own TCP connection (own svc session);
  // exactly one of them may win each (key, epoch).
  constexpr int clients = 6;
  constexpr int rounds = 5;
  remote_stack stack({.nodes = clients, .shards = 4, .seed = 17});

  std::vector<std::unique_ptr<net::client>> handles;
  for (int i = 0; i < clients; ++i) {
    handles.push_back(stack.connect());
    ASSERT_TRUE(handles.back()->connected());
  }

  for (int round = 0; round < rounds; ++round) {
    const std::string key = "contested/" + std::to_string(round);
    std::vector<char> won(clients, 0);
    std::vector<std::thread> racers;
    racers.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      racers.emplace_back([&, i] {
        won[static_cast<std::size_t>(i)] =
            handles[static_cast<std::size_t>(i)]->try_acquire(key).won;
      });
    }
    for (auto& t : racers) t.join();
    int winners = 0;
    for (int i = 0; i < clients; ++i) {
      winners += won[static_cast<std::size_t>(i)] ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "round " << round;
  }
}

TEST(NetRemote, BlockingAcquireHandsLeadershipAround) {
  constexpr int clients = 4;
  remote_stack stack({.nodes = clients, .shards = 2, .seed = 23});
  std::vector<std::unique_ptr<net::client>> handles;
  for (int i = 0; i < clients; ++i) {
    handles.push_back(stack.connect());
    ASSERT_TRUE(handles.back()->connected());
  }

  std::atomic<int> inside{0};
  std::atomic<int> entries{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      auto& client = *handles[static_cast<std::size_t>(i)];
      const auto result = client.acquire("remote/mutex");
      EXPECT_TRUE(result.won);
      const int concurrent = inside.fetch_add(1) + 1;
      EXPECT_EQ(concurrent, 1) << "two remote holders at once";
      entries.fetch_add(1);
      inside.fetch_sub(1);
      EXPECT_EQ(client.release("remote/mutex", result.epoch),
                svc::lease_status::ok);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(entries.load(), clients);
}

TEST(NetRemote, TimedAcquireTimesOutWhileHeld) {
  remote_stack stack;
  const auto holder = stack.connect();
  const auto waiter = stack.connect();
  const auto held = holder->try_acquire("remote/bounded");
  ASSERT_TRUE(held.won);

  const auto missed = waiter->try_acquire_for("remote/bounded", 100ms);
  EXPECT_FALSE(missed.won);
  EXPECT_TRUE(missed.timed_out);

  ASSERT_EQ(holder->release("remote/bounded", held.epoch),
            svc::lease_status::ok);
  const auto won = waiter->try_acquire_for("remote/bounded", 10'000ms);
  EXPECT_TRUE(won.won);
  EXPECT_FALSE(won.timed_out);
  EXPECT_EQ(waiter->release("remote/bounded", won.epoch),
            svc::lease_status::ok);
}

TEST(NetRemote, PipelinedRequestsCompleteOutOfOrder) {
  // One connection, two in-flight requests: a blocking acquire parked
  // behind a held key, then a metrics fetch submitted after it. The
  // metrics response must overtake the parked acquire — that is what
  // the request ids are for.
  remote_stack stack;
  const auto holder = stack.connect();
  const auto pipelined = stack.connect();
  const auto held = holder->try_acquire("remote/held");
  ASSERT_TRUE(held.won);

  const std::uint64_t blocked_id =
      pipelined->submit(net::wire::op::acquire, "remote/held");
  ASSERT_NE(blocked_id, 0u);
  const std::uint64_t quick_id = pipelined->submit(net::wire::op::metrics);
  ASSERT_NE(quick_id, 0u);

  // The later-submitted metrics fetch answers while the acquire stays
  // parked server-side.
  const auto quick = pipelined->take(quick_id);
  ASSERT_TRUE(quick.has_value());
  EXPECT_EQ(quick->result, net::wire::status::ok);
  EXPECT_NE(quick->body.find("\"net\":{"), std::string::npos);

  // Now free the key; the parked acquire completes with the win.
  ASSERT_EQ(holder->release("remote/held", held.epoch),
            svc::lease_status::ok);
  const auto blocked = pipelined->take(blocked_id);
  ASSERT_TRUE(blocked.has_value());
  EXPECT_TRUE(blocked->won());
  EXPECT_EQ(pipelined->release("remote/held", blocked->epoch),
            svc::lease_status::ok);
}

TEST(NetRemote, BackpressureCapStillAnswersEverything) {
  // Flood one connection far past its in-flight cap: the server pauses
  // reading (backpressure) instead of buffering without bound, and
  // every request is still answered exactly once.
  net::server_config server_config;
  server_config.max_inflight_per_connection = 4;
  remote_stack stack({.nodes = 2, .shards = 2}, server_config);
  const auto client = stack.connect();
  ASSERT_TRUE(client->connected());

  constexpr int burst = 64;
  std::vector<std::uint64_t> ids;
  ids.reserve(burst);
  for (int i = 0; i < burst; ++i) {
    ids.push_back(client->submit(net::wire::op::try_acquire,
                                 "flood/" + std::to_string(i)));
    ASSERT_NE(ids.back(), 0u);
  }
  int wins = 0;
  for (const std::uint64_t id : ids) {
    const auto r = client->take(id);
    ASSERT_TRUE(r.has_value());
    if (r->won()) ++wins;
  }
  EXPECT_EQ(wins, burst);  // distinct keys: every acquire wins
}

TEST(NetRemote, DoubleReleaseAndZombieVerdictsAreCleanOverTheWire) {
  remote_stack stack;
  const auto client = stack.connect();
  const auto won = client->try_acquire("remote/twice");
  ASSERT_TRUE(won.won);

  EXPECT_EQ(client->release("remote/twice", won.epoch),
            svc::lease_status::ok);
  // Every second-release path maps to the same verdicts a local session
  // gets: stale fencing for the old epoch, not_leader unfenced.
  EXPECT_EQ(client->release("remote/twice", won.epoch),
            svc::lease_status::stale_epoch);
  EXPECT_EQ(client->release("remote/twice"), svc::lease_status::not_leader);
  EXPECT_EQ(client->renew("remote/twice", won.epoch),
            svc::lease_status::stale_epoch);
  // A key this client never held, at its implicit epoch 0.
  EXPECT_EQ(client->release("remote/never", 0), svc::lease_status::not_leader);
}

TEST(NetRemote, GracefulDisconnectReleasesEverythingHeld) {
  remote_stack stack;
  const auto leaver = stack.connect();
  const auto other = stack.connect();
  ASSERT_TRUE(leaver->try_acquire("g/0").won);
  ASSERT_TRUE(leaver->try_acquire("g/1").won);
  ASSERT_TRUE(other->try_acquire("g/2").won);

  EXPECT_EQ(leaver->disconnect(), 2u);
  EXPECT_EQ(stack.service.registry().leader_of("g/0"), -1);
  EXPECT_EQ(stack.service.registry().leader_of("g/1"), -1);
  EXPECT_NE(stack.service.registry().leader_of("g/2"), -1);
  // The connection survives a polite disconnect.
  EXPECT_TRUE(leaver->try_acquire("g/0").won);
}

// The acceptance crash scenario. A remote client holds a lease and its
// socket dies without a disconnect op. The server's disconnect-on-close
// hook must make the key re-grantable immediately — and in the worst
// case (FIN never arrives) PR 2's TTL + one sweep bound still applies,
// so the re-grant deadline asserted here is that bound.
TEST(NetRemote, KilledClientSocketMidLeaseIsReclaimed) {
  constexpr std::uint64_t ttl_ms = 400;
  constexpr std::uint64_t sweep_ms = 20;
  remote_stack stack({.nodes = 4,
                      .shards = 2,
                      .seed = 7,
                      .lease_ttl_ms = ttl_ms,
                      .sweep_interval_ms = sweep_ms});
  auto doomed = stack.connect();
  const auto heir = stack.connect();
  ASSERT_TRUE(doomed->connected());
  ASSERT_TRUE(heir->connected());

  const auto won = doomed->try_acquire("remote/crashy");
  ASSERT_TRUE(won.won);
  ASSERT_EQ(stack.service.registry().leader_of("remote/crashy"),
            static_cast<int>(doomed->session_id()));

  // Kill the socket — no disconnect op, exactly like a crashed process.
  const auto crash_time = std::chrono::steady_clock::now();
  doomed->close();

  // The heir must inherit within ~TTL + one sweep (the local PR 2
  // bound); with the close hook it is near-immediate, but the assert
  // only relies on the guaranteed bound.
  const auto heir_result = heir->try_acquire_for(
      "remote/crashy", std::chrono::milliseconds(ttl_ms + 10 * sweep_ms));
  const auto waited = std::chrono::steady_clock::now() - crash_time;
  ASSERT_TRUE(heir_result.won);
  EXPECT_GE(heir_result.epoch, 1u);
  EXPECT_LE(waited, std::chrono::milliseconds(ttl_ms + 10 * sweep_ms));
  EXPECT_EQ(stack.service.registry().leader_of("remote/crashy"),
            static_cast<int>(heir->session_id()));

  // The reclaim is attributed to the network edge.
  EXPECT_GE(stack.server.report().disconnect_reclaims, 1u);
  EXPECT_EQ(heir->release("remote/crashy", heir_result.epoch),
            svc::lease_status::ok);
}

// Regression: a try_acquire pipelined right before the socket closes
// can be dispatched in the same read pass that sees the EOF — its win
// lands *after* disconnect-on-close already swept the session. With
// never-expiring leases (ttl 0) an unreclaimed win would wedge the key
// forever; the server must hand such a win straight back.
TEST(NetRemote, FireAndCloseTryAcquireNeverOrphansTheKey) {
  remote_stack stack({.nodes = 2, .shards = 2});  // lease_ttl_ms = 0
  for (int round = 0; round < 20; ++round) {
    const std::string key = "fire/" + std::to_string(round);
    {
      auto doomed = stack.connect();
      ASSERT_TRUE(doomed->connected());
      ASSERT_NE(doomed->submit(net::wire::op::try_acquire, key), 0u);
      doomed->close();  // don't take(): the response may never exist
    }
    // Whichever way the race fell — response before EOF processing, or
    // win after disconnect — the key must be acquirable again, bounded
    // only by teardown latency, never by a lease that can't expire.
    const auto survivor = stack.connect();
    ASSERT_TRUE(survivor->connected());
    const auto regained = survivor->try_acquire_for(key, 5'000ms);
    ASSERT_TRUE(regained.won) << "round " << round << ": key orphaned";
    EXPECT_EQ(survivor->release(key, regained.epoch), svc::lease_status::ok);
  }
}

TEST(NetRemote, MetricsFetchCarriesNetAndServiceSections) {
  remote_stack stack;
  const auto client = stack.connect();
  ASSERT_TRUE(client->try_acquire("m/1").won);
  const std::string json = client->metrics_json();
  ASSERT_FALSE(json.empty());
  // Service section keys.
  EXPECT_NE(json.find("\"acquires\":"), std::string::npos);
  EXPECT_NE(json.find("\"strategies\":{"), std::string::npos);
  // Net section keys.
  EXPECT_NE(json.find("\"net\":{"), std::string::npos);
  EXPECT_NE(json.find("\"frames_in\":"), std::string::npos);
  EXPECT_NE(json.find("\"dispatch_batches\":"), std::string::npos);
  EXPECT_NE(json.find("\"disconnect_reclaims\":"), std::string::npos);
}

TEST(NetRemote, ServerStopRejectsRemoteCallsCleanly) {
  remote_stack stack;
  const auto client = stack.connect();
  ASSERT_TRUE(client->try_acquire("stopme").won);
  stack.server.stop();
  // The socket died with the server: calls degrade, nothing hangs.
  const auto after = client->try_acquire("stopme");
  EXPECT_FALSE(after.won);
  EXPECT_TRUE(after.rejected);
  // The connection's session was disconnected, so the lease is free.
  EXPECT_EQ(stack.service.registry().leader_of("stopme"), -1);
}

TEST(NetRemote, SaturatedWaiterCapRetriesThroughBusyAndStillWins) {
  // Regression for the busy path: with max_waiters=1, a parked blocking
  // acquire saturates the server's entire blocking capacity, so a
  // second client's acquire is answered `busy`. The client must absorb
  // that with bounded exponential-backoff retries and *still win* once
  // the holder releases — previously busy could surface to the caller
  // looking exactly like a shutdown rejection.
  remote_stack stack({.nodes = 4, .shards = 2},
                     {.max_waiters = 1});
  const auto holder = stack.connect();
  const auto parked = stack.connect();
  const auto contender = stack.connect();
  ASSERT_TRUE(holder->connected());
  ASSERT_TRUE(parked->connected());
  ASSERT_TRUE(contender->connected());

  const auto held = holder->try_acquire("busy/key");
  ASSERT_TRUE(held.won);

  // Occupy the single waiter slot with an acquire that will park until
  // the holder releases.
  svc::acquire_result parked_result;
  std::thread parked_thread(
      [&] { parked_result = parked->acquire("busy/key"); });
  // Wait until the waiter slot is actually taken (the parked acquire is
  // server-side), so the contender is guaranteed to hit the cap.
  const auto armed_by = std::chrono::steady_clock::now() + 5s;
  while (stack.service.registry().leader_of("busy/key") == -1 ||
         stack.server.report().requests < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), armed_by);
    std::this_thread::sleep_for(5ms);
  }

  svc::acquire_result contender_result;
  std::thread contender_thread(
      [&] { contender_result = contender->acquire("busy/key"); });
  // Let the contender bounce off the cap at least once before the
  // holder releases; busy_rejections proves the retries happened.
  const auto busy_by = std::chrono::steady_clock::now() + 5s;
  while (stack.server.report().busy_rejections == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), busy_by);
    std::this_thread::sleep_for(5ms);
  }

  EXPECT_EQ(holder->release("busy/key", held.epoch),
            svc::lease_status::ok);
  parked_thread.join();
  ASSERT_TRUE(parked_result.won);
  EXPECT_EQ(parked->release("busy/key", parked_result.epoch),
            svc::lease_status::ok);
  contender_thread.join();
  ASSERT_TRUE(contender_result.won)
      << "busy must be retried, not surfaced as a loss";
  EXPECT_GE(stack.server.report().busy_rejections, 1u);
}

TEST(NetRemote, RenewRefreshesTheReportedDeadline) {
  remote_stack stack({.nodes = 2, .shards = 2, .lease_ttl_ms = 60'000,
                      .sweep_interval_ms = 30'000});
  const auto client = stack.connect();
  const auto won = client->try_acquire("renew/deadline");
  ASSERT_TRUE(won.won);
  std::chrono::steady_clock::time_point refreshed{};
  ASSERT_EQ(client->renew("renew/deadline", won.epoch, &refreshed),
            svc::lease_status::ok);
  // The refreshed deadline is a full TTL out (modulo round-trip time).
  const auto remaining = refreshed - std::chrono::steady_clock::now();
  EXPECT_GT(remaining, 55s);
  EXPECT_LE(remaining, 61s);
}

TEST(NetRemote, WatchEventsArriveOverTheWire) {
  remote_stack stack({.nodes = 2, .shards = 2, .lease_ttl_ms = 30'000,
                      .sweep_interval_ms = 10'000});
  const auto watcher = stack.connect();
  const auto actor = stack.connect();

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<svc::watch_event> events;
  const std::uint64_t sub = watcher->watch(
      "wired/leader", [&](const svc::watch_event& e) {
        const std::lock_guard<std::mutex> lock(mutex);
        events.push_back(e);
        cv.notify_all();
      });
  ASSERT_NE(sub, 0u);

  const auto won = actor->try_acquire("wired/leader");
  ASSERT_TRUE(won.won);
  EXPECT_EQ(actor->release("wired/leader", won.epoch),
            svc::lease_status::ok);

  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, 3s, [&] { return events.size() >= 2; }));
    bool saw_elected = false;
    bool saw_released = false;
    for (const auto& e : events) {
      EXPECT_EQ(e.key, "wired/leader");
      EXPECT_EQ(e.epoch, won.epoch);
      if (e.kind == svc::transition::elected) saw_elected = true;
      if (e.kind == svc::transition::released) saw_released = true;
    }
    EXPECT_TRUE(saw_elected);
    EXPECT_TRUE(saw_released);
  }

  // After unwatch, a new transition stays silent (push side torn down).
  watcher->unwatch(sub);
  std::size_t seen;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    seen = events.size();
  }
  const auto again = actor->try_acquire("wired/leader");
  ASSERT_TRUE(again.won);
  EXPECT_EQ(actor->release("wired/leader", again.epoch),
            svc::lease_status::ok);
  std::this_thread::sleep_for(150ms);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(events.size(), seen);
  }
  const auto report = stack.server.report();
  EXPECT_GE(report.watch_subscriptions, 1u);
  EXPECT_GE(report.events_pushed, 2u);
}

TEST(NetRemote, TwoWatchesOnOneKeyDeliverExactlyOnceEach) {
  // Regression: two subscriptions to the same key on one connection
  // must share one server-side subscription — each callback sees every
  // transition exactly once, not once per sibling subscription.
  remote_stack stack;
  const auto watcher = stack.connect();
  const auto actor = stack.connect();

  std::mutex mutex;
  std::condition_variable cv;
  int first_count = 0;
  int second_count = 0;
  const std::uint64_t first = watcher->watch(
      "dup/key", [&](const svc::watch_event&) {
        const std::lock_guard<std::mutex> lock(mutex);
        ++first_count;
        cv.notify_all();
      });
  const std::uint64_t second = watcher->watch(
      "dup/key", [&](const svc::watch_event&) {
        const std::lock_guard<std::mutex> lock(mutex);
        ++second_count;
        cv.notify_all();
      });
  ASSERT_NE(first, 0u);
  ASSERT_NE(second, 0u);
  ASSERT_NE(first, second);
  EXPECT_EQ(stack.service.report().watch.active, 1u)
      << "one key must hold exactly one server-side subscription";

  const auto won = actor->try_acquire("dup/key");
  ASSERT_TRUE(won.won);
  EXPECT_EQ(actor->release("dup/key", won.epoch), svc::lease_status::ok);

  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, 3s, [&] {
      return first_count >= 2 && second_count >= 2;
    }));
  }
  // Let any (wrong) duplicates trickle in before counting exactly.
  std::this_thread::sleep_for(150ms);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(first_count, 2);   // elected + released, once each
    EXPECT_EQ(second_count, 2);
  }
  watcher->unwatch(first);
  // The shared server subscription survives until the last local ref.
  EXPECT_EQ(stack.service.report().watch.active, 1u);
  watcher->unwatch(second);
  const auto gone_by = std::chrono::steady_clock::now() + 3s;
  while (stack.service.report().watch.active != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), gone_by);
    std::this_thread::sleep_for(5ms);
  }
}

TEST(NetRemote, WatchCallbackMayCallTheClientSynchronously) {
  // Regression: callbacks run on a dedicated event thread, not the
  // reader — so a callback can issue request/response ops on the SAME
  // client (local/remote parity; on the reader this would deadlock
  // waiting for its own reply).
  remote_stack stack;
  const auto watcher = stack.connect();
  const auto actor = stack.connect();

  std::mutex mutex;
  std::condition_variable cv;
  bool reacquired = false;
  const std::uint64_t sub = watcher->watch(
      "reentrant/key", [&](const svc::watch_event& e) {
        if (e.kind != svc::transition::released) return;
        // A synchronous round trip from inside the callback.
        const auto won = watcher->try_acquire("reentrant/key");
        const std::lock_guard<std::mutex> lock(mutex);
        reacquired = won.won;
        cv.notify_all();
      });
  ASSERT_NE(sub, 0u);

  const auto won = actor->try_acquire("reentrant/key");
  ASSERT_TRUE(won.won);
  EXPECT_EQ(actor->release("reentrant/key", won.epoch),
            svc::lease_status::ok);

  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return reacquired; }))
      << "synchronous call from a watch callback deadlocked";
}

TEST(NetRemote, DeadConnectionTearsDownItsWatches) {
  remote_stack stack;
  {
    const auto doomed = stack.connect();
    std::uint64_t id = doomed->watch(
        "teardown/key", [](const svc::watch_event&) {});
    ASSERT_NE(id, 0u);
    // Destroying the client closes the socket without unwatching.
  }
  // The server-side hub subscription must be gone (finish_connection's
  // cleanup); give the loop a moment to observe the close.
  const auto gone_by = std::chrono::steady_clock::now() + 3s;
  while (stack.service.report().watch.active != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), gone_by);
    std::this_thread::sleep_for(5ms);
  }
}

// ---------------------------------------------------------------------
// Multi-reactor coverage. reuseport=false forces the single-listener
// round-robin accept path, which deals connections across reactors
// deterministically (starting at reactor 1) — so these tests exercise
// cross-reactor behavior even when the kernel would have hashed every
// loopback connection onto one listener.

net::server_config reactor_config(int reactors, bool reuseport = false) {
  net::server_config config;
  config.reactors = reactors;
  config.reuseport = reuseport;
  return config;
}

// Satellite regression: close() with responses still in flight must
// fail the pending requests cleanly — no blocked take(), no deadlock
// between the closing thread and waiters, and a concurrent double
// close must be safe.
TEST(NetClient, CloseWithInFlightRequestsFailsThemCleanly) {
  remote_stack stack;
  const auto holder = stack.connect();
  auto doomed = stack.connect();
  ASSERT_TRUE(holder->connected());
  ASSERT_TRUE(doomed->connected());

  const auto held = holder->try_acquire("close/held");
  ASSERT_TRUE(held.won);

  // Park an acquire server-side (it can only complete when the holder
  // releases — which never happens) plus a metrics call racing close.
  const std::uint64_t parked_id =
      doomed->submit(net::wire::op::acquire, "close/held");
  ASSERT_NE(parked_id, 0u);

  std::atomic<bool> took{false};
  std::thread waiter([&] {
    // Blocks until close() fails it; must NOT hang.
    const auto r = doomed->take(parked_id);
    EXPECT_FALSE(r.has_value());  // clean loss, not a response
    took.store(true);
  });
  std::thread spammer([&] {
    // More traffic in flight while the connection dies.
    for (int i = 0; i < 50; ++i) {
      (void)doomed->submit(net::wire::op::metrics);
    }
  });
  std::this_thread::sleep_for(20ms);
  std::thread closer_a([&] { doomed->close(); });
  std::thread closer_b([&] { doomed->close(); });  // concurrent double close
  closer_a.join();
  closer_b.join();
  spammer.join();

  // The parked waiter must have been released promptly by the close.
  const auto freed_by = std::chrono::steady_clock::now() + 5s;
  while (!took.load()) {
    ASSERT_LT(std::chrono::steady_clock::now(), freed_by)
        << "take() still blocked after close()";
    std::this_thread::sleep_for(5ms);
  }
  waiter.join();
  // Post-close submits fail cleanly (id 0), and close stays idempotent.
  EXPECT_EQ(doomed->submit(net::wire::op::metrics), 0u);
  doomed->close();
  EXPECT_EQ(holder->release("close/held", held.epoch), svc::lease_status::ok);
}

TEST(NetReactors, UniqueWinnerAcrossClientsOnDifferentReactors) {
  constexpr int clients = 8;
  constexpr int rounds = 5;
  remote_stack stack({.nodes = clients, .shards = 4, .seed = 11},
                     reactor_config(4));
  ASSERT_EQ(stack.server.reactor_count(), 4);

  std::vector<std::unique_ptr<net::client>> handles;
  for (int i = 0; i < clients; ++i) {
    handles.push_back(stack.connect());
    ASSERT_TRUE(handles.back()->connected());
  }
  // Round-robin accept: 8 connections over 4 reactors = 2 each.
  const auto spread = stack.server.report();
  ASSERT_EQ(spread.per_reactor.size(), 4u);
  int hosting = 0;
  for (const auto& s : spread.per_reactor) hosting += s.accepted > 0 ? 1 : 0;
  EXPECT_GE(hosting, 2) << "connections were not spread across reactors";

  for (int round = 0; round < rounds; ++round) {
    const std::string key = "xreactor/" + std::to_string(round);
    std::vector<char> won(clients, 0);
    std::vector<std::thread> racers;
    racers.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      racers.emplace_back([&, i] {
        won[static_cast<std::size_t>(i)] =
            handles[static_cast<std::size_t>(i)]->try_acquire(key).won;
      });
    }
    for (auto& t : racers) t.join();
    int winners = 0;
    for (int i = 0; i < clients; ++i) {
      winners += won[static_cast<std::size_t>(i)] ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "round " << round;
  }
}

TEST(NetReactors, KilledSocketOffReactorZeroIsReclaimed) {
  // The disconnect-on-close reclaim must work when the dead connection
  // lives on a reactor other than 0 (teardown runs on the owning
  // reactor's thread, wherever that is). Round-robin adoption starts at
  // reactor 1, so the doomed connection is guaranteed off reactor 0.
  constexpr std::uint64_t ttl_ms = 400;
  constexpr std::uint64_t sweep_ms = 20;
  remote_stack stack({.nodes = 4,
                      .shards = 2,
                      .seed = 7,
                      .lease_ttl_ms = ttl_ms,
                      .sweep_interval_ms = sweep_ms},
                     reactor_config(4));
  auto doomed = stack.connect();
  const auto heir = stack.connect();
  ASSERT_TRUE(doomed->connected());
  ASSERT_TRUE(heir->connected());
  {
    const auto report = stack.server.report();
    ASSERT_EQ(report.per_reactor.size(), 4u);
    EXPECT_EQ(report.per_reactor[0].accepted, 0u)
        << "expected round-robin adoption to start off reactor 0";
    EXPECT_GE(report.per_reactor[1].accepted, 1u);
  }

  const auto won = doomed->try_acquire("offzero/crashy");
  ASSERT_TRUE(won.won);
  doomed->close();  // no disconnect op: a crash

  const auto heir_result = heir->try_acquire_for(
      "offzero/crashy", std::chrono::milliseconds(ttl_ms + 10 * sweep_ms));
  ASSERT_TRUE(heir_result.won);
  EXPECT_GE(stack.server.report().disconnect_reclaims, 1u);
  EXPECT_EQ(heir->release("offzero/crashy", heir_result.epoch),
            svc::lease_status::ok);
}

TEST(NetReactors, BackpressureCapHoldsPerConnectionUnderFourReactors) {
  // Four flooding connections on four reactors: each must be paused
  // against ITS cap independently, and every request still answered.
  net::server_config server_config = reactor_config(4);
  server_config.max_inflight_per_connection = 4;
  remote_stack stack({.nodes = 4, .shards = 4}, server_config);

  constexpr int clients = 4;
  constexpr int burst = 64;
  std::vector<std::unique_ptr<net::client>> handles;
  for (int i = 0; i < clients; ++i) {
    handles.push_back(stack.connect());
    ASSERT_TRUE(handles.back()->connected());
  }
  std::atomic<int> wins{0};
  std::vector<std::thread> flooders;
  for (int c = 0; c < clients; ++c) {
    flooders.emplace_back([&, c] {
      auto& client = *handles[static_cast<std::size_t>(c)];
      std::vector<std::uint64_t> ids;
      ids.reserve(burst);
      for (int i = 0; i < burst; ++i) {
        ids.push_back(client.submit(
            net::wire::op::try_acquire,
            "bp/" + std::to_string(c) + "/" + std::to_string(i)));
      }
      for (const std::uint64_t id : ids) {
        const auto r = client.take(id);
        if (r.has_value() && r->won()) wins.fetch_add(1);
      }
    });
  }
  for (auto& t : flooders) t.join();
  EXPECT_EQ(wins.load(), clients * burst);  // disjoint keys: all won
  EXPECT_GE(stack.server.report().backpressure_pauses, 1u);
}

TEST(NetReactors, WatchFanoutAcrossReactorsDeliversExactlyOnce) {
  // Watchers pinned to different reactors all subscribe to ONE key; a
  // transition must reach every one of them exactly once (the shared
  // encoded buffer fans out per reactor — no duplicates, no misses).
  constexpr int watchers = 6;
  remote_stack stack({.nodes = 2, .shards = 2}, reactor_config(4));
  std::vector<std::unique_ptr<net::client>> handles;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> counts(watchers, 0);
  for (int w = 0; w < watchers; ++w) {
    handles.push_back(stack.connect());
    ASSERT_TRUE(handles.back()->connected());
    const std::uint64_t id = handles.back()->watch(
        "fan/one", [&, w](const svc::watch_event&) {
          const std::lock_guard<std::mutex> lock(mutex);
          ++counts[static_cast<std::size_t>(w)];
          cv.notify_all();
        });
    ASSERT_NE(id, 0u);
  }

  const auto actor = stack.connect();
  const auto won = actor->try_acquire("fan/one");
  ASSERT_TRUE(won.won);
  EXPECT_EQ(actor->release("fan/one", won.epoch), svc::lease_status::ok);

  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] {
      for (const int c : counts) {
        if (c < 2) return false;
      }
      return true;
    })) << "not every watcher heard both transitions";
  }
  std::this_thread::sleep_for(150ms);  // let any (wrong) duplicates land
  {
    const std::lock_guard<std::mutex> lock(mutex);
    for (int w = 0; w < watchers; ++w) {
      EXPECT_EQ(counts[static_cast<std::size_t>(w)], 2)
          << "watcher " << w << " saw a duplicate or missed an event";
    }
  }
  // elected + released to each of the 6 watchers = 12 pushed frames.
  EXPECT_GE(stack.server.report().events_pushed,
            static_cast<std::uint64_t>(2 * watchers));
}

TEST(NetClient, StripedClientSpreadsKeysAndDisconnectsEverything) {
  remote_stack stack({.nodes = 8, .shards = 4}, reactor_config(4));
  net::client striped("127.0.0.1", stack.server.port(), 4);
  ASSERT_TRUE(striped.connected());
  EXPECT_EQ(striped.stripe_count(), 4u);
  // Four stripes = four server connections (sessions).
  EXPECT_GE(stack.server.report().connections_accepted, 4u);

  constexpr int keys = 8;
  std::vector<std::uint64_t> epochs(keys);
  for (int k = 0; k < keys; ++k) {
    const auto won = striped.try_acquire("stripe/" + std::to_string(k));
    ASSERT_TRUE(won.won) << "key " << k;
    epochs[static_cast<std::size_t>(k)] = won.epoch;
  }
  // Release half through the API; the polite disconnect must sweep the
  // rest across ALL stripes' sessions, not just stripe 0's.
  for (int k = 0; k < keys / 2; ++k) {
    EXPECT_EQ(striped.release("stripe/" + std::to_string(k),
                              epochs[static_cast<std::size_t>(k)]),
              svc::lease_status::ok);
  }
  EXPECT_EQ(striped.disconnect(), static_cast<std::size_t>(keys - keys / 2));
  for (int k = 0; k < keys; ++k) {
    EXPECT_EQ(stack.service.registry().leader_of("stripe/" +
                                                 std::to_string(k)),
              -1)
        << "key " << k << " still held after striped disconnect";
  }
  striped.close();
}

// ---------------------------------------------------------------------
// Connection loss vs local close (chaos PR): the two ways a transport
// dies must be distinguishable in the returned statuses.

TEST(NetClient, RemoteSeverDuringInFlightTakeReportsConnectionLost) {
  auto stack = std::make_unique<remote_stack>(
      svc::service_config{.nodes = 4, .shards = 2});
  const auto holder = stack->connect();
  ASSERT_TRUE(holder->connected());
  const auto won = holder->try_acquire("sever/key");
  ASSERT_TRUE(won.won);

  // A second client submits a blocking acquire that never arrives: a
  // nemesis proxy black-holes the frame and then severs the pair —
  // a real network sever with the request in flight. (server.stop()
  // would not do: a graceful stop *answers* parked ops with rejected
  // before closing; only a sever leaves the take empty.)
  chaos::nemesis_config nemesis_config;
  nemesis_config.upstream_port = stack->server.port();
  nemesis_config.seed = 11;
  chaos::nemesis proxy(nemesis_config);
  ASSERT_TRUE(proxy.running());
  const auto blocked =
      std::make_unique<net::client>("127.0.0.1", proxy.port());
  ASSERT_TRUE(blocked->connected());
  chaos::fault_policy black_hole;
  black_hole.drop = 1.0;
  proxy.set_policy(black_hole);
  const std::uint64_t id = blocked->submit(net::wire::op::acquire,
                                           "sever/key");
  ASSERT_NE(id, 0u);
  const auto dropped = std::chrono::steady_clock::now() +
                       std::chrono::seconds(5);
  while (proxy.stats().frames_dropped == 0 &&
         std::chrono::steady_clock::now() < dropped) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(proxy.stats().frames_dropped, 1u);
  proxy.set_policy({});  // phase boundary: severs the tainted pair

  // The in-flight take() fails cleanly, and every verdict says
  // *severed*, not closed: acquire-family calls report rejected +
  // connection_lost, lease calls report lease_status::connection_lost.
  EXPECT_FALSE(blocked->take(id).has_value());
  EXPECT_EQ(blocked->reason(), net::close_reason::severed);
  EXPECT_FALSE(blocked->connected());
  const auto after = blocked->try_acquire("sever/key");
  EXPECT_TRUE(after.rejected);
  EXPECT_TRUE(after.connection_lost);
  EXPECT_EQ(blocked->release("sever/key", 0),
            svc::lease_status::connection_lost);
  EXPECT_EQ(blocked->renew("sever/key", 0),
            svc::lease_status::connection_lost);

  // The holder's direct connection dies with the server itself; a call
  // submitted after the transport is gone reports the loss the same way.
  stack->server.stop();
  EXPECT_EQ(holder->release("sever/key", won.epoch),
            svc::lease_status::connection_lost);
  EXPECT_EQ(holder->reason(), net::close_reason::severed);

  // A sever already recorded is not rewritten by a later close():
  // the first cause wins.
  holder->close();
  EXPECT_EQ(holder->reason(), net::close_reason::severed);
}

TEST(NetClient, LocalCloseKeepsTheOriginalCrashSemanticsMapping) {
  remote_stack stack;
  const auto client = stack.connect();
  ASSERT_TRUE(client->connected());
  ASSERT_TRUE(client->try_acquire("close/key").won);
  EXPECT_EQ(client->reason(), net::close_reason::none);

  client->close();
  // This process hung up: calls degrade with the PR-4 mapping (plain
  // rejected / stale_epoch), and reason() reports the local close.
  EXPECT_EQ(client->reason(), net::close_reason::local_close);
  const auto after = client->try_acquire("close/key");
  EXPECT_TRUE(after.rejected);
  EXPECT_FALSE(after.connection_lost);
  EXPECT_EQ(client->release("close/key", 0), svc::lease_status::stale_epoch);
}

}  // namespace
}  // namespace elect
