// Renaming (Figure 3) and baseline-renaming property tests: name
// uniqueness and range in every execution (Lemma A.6), termination,
// behaviour under the contention-delaying adversary, and iteration-count
// sanity (Theorem A.13's O(log² n) loop bound vs the baseline's Ω(n)).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include "common/stats.hpp"
#include "exp/harness.hpp"

namespace elect {
namespace {

using exp::algo;
using exp::run_trial;
using exp::trial_config;
using exp::trial_result;

class RenamingSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(RenamingSweep, NamesUniqueAndInRange) {
  const auto [n, adversary] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    trial_config config;
    config.kind = algo::renaming;
    config.n = n;
    config.seed = seed;
    config.adversary = adversary;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed) << "n=" << n << " adv=" << adversary
                                  << " seed=" << seed;
    std::set<std::int64_t> names;
    for (const std::int64_t name : result.outcomes) {
      ASSERT_GE(name, 0) << "n=" << n << " seed=" << seed;
      ASSERT_LT(name, n) << "n=" << n << " seed=" << seed;
      ASSERT_TRUE(names.insert(name).second)
          << "duplicate name " << name << " (n=" << n << " adv=" << adversary
          << " seed=" << seed << ")";
    }
    EXPECT_EQ(names.size(), static_cast<std::size_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RenamingSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 12),
                       ::testing::Values("uniform", "round-robin",
                                         "contention-delayer")),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

class BaselineRenamingSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(BaselineRenamingSweep, NamesUniqueAndInRange) {
  const auto [n, adversary] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    trial_config config;
    config.kind = algo::baseline_renaming;
    config.n = n;
    config.seed = seed;
    config.adversary = adversary;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    std::set<std::int64_t> names;
    for (const std::int64_t name : result.outcomes) {
      ASSERT_GE(name, 0);
      ASSERT_LT(name, n);
      ASSERT_TRUE(names.insert(name).second)
          << "duplicate name (n=" << n << " seed=" << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BaselineRenamingSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values("uniform", "round-robin")),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

TEST(Renaming, PartialParticipationGetsDistinctNames) {
  // k < n processors rename; names still unique, within [0, n).
  trial_config config;
  config.kind = algo::renaming;
  config.n = 10;
  config.participants = 4;
  config.seed = 7;
  const trial_result result = run_trial(config);
  ASSERT_TRUE(result.completed);
  std::set<std::int64_t> names(result.outcomes.begin(),
                               result.outcomes.end());
  EXPECT_EQ(names.size(), 4u);
  for (const std::int64_t name : names) {
    EXPECT_GE(name, 0);
    EXPECT_LT(name, 10);
  }
}

TEST(Renaming, UniqueNamesUnderCrashes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    trial_config config;
    config.kind = algo::renaming;
    config.n = 7;
    config.seed = seed;
    config.adversary = "uniform";
    config.crashes = 2;
    const trial_result result = run_trial(config);
    if (!result.completed) continue;  // pathological crash corner; skip
    std::set<std::int64_t> names;
    for (const std::int64_t name : result.outcomes) {
      if (name < 0) continue;  // crashed participant
      ASSERT_TRUE(names.insert(name).second)
          << "duplicate name under crashes (seed " << seed << ")";
    }
  }
}

TEST(Renaming, IterationCountsStayPolylog) {
  // Theorem A.13 flavour: max loop iterations per processor stay tiny
  // compared to n (the baseline comparison below shows the contrast).
  const int n = 16;
  sample_stats max_iterations;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trial_config config;
    config.kind = algo::renaming;
    config.n = n;
    config.seed = seed;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    max_iterations.add(static_cast<double>(*std::max_element(
        result.iterations.begin(), result.iterations.end())));
  }
  EXPECT_LT(max_iterations.mean(), 8.0);  // log2(16)^2 = 16; generous half
}

TEST(Renaming, BaselineProbesMoreThanFigure3) {
  // The baseline's random-order probing wastes many more elections than
  // Figure 3's contention-aware choice (expected Ω(n) vs O(log² n) —
  // visible already at n=16 in *mean total* iterations).
  const int n = 16;
  const auto mean_total_iterations = [&](algo kind) {
    double total = 0;
    const int trials = 6;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      trial_config config;
      config.kind = kind;
      config.n = n;
      config.seed = seed;
      const trial_result result = run_trial(config);
      EXPECT_TRUE(result.completed);
      for (const std::int64_t iterations : result.iterations) {
        total += static_cast<double>(iterations);
      }
    }
    return total / trials;
  };
  const double ours = mean_total_iterations(algo::renaming);
  const double baseline = mean_total_iterations(algo::baseline_renaming);
  EXPECT_LT(ours, baseline);
}

TEST(Renaming, DeterministicGivenSeed) {
  trial_config config;
  config.kind = algo::renaming;
  config.n = 6;
  config.seed = 99;
  const trial_result a = run_trial(config);
  const trial_result b = run_trial(config);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.outcomes, b.outcomes);
}

}  // namespace
}  // namespace elect
