// Unit tests for the test-and-set linearizability checker on hand-built
// histories (the checker itself is exercised end-to-end in
// test_election.cpp).
#include <gtest/gtest.h>

#include "election/history.hpp"

namespace elect::election {
namespace {

tas_op completed(process_id pid, std::uint64_t invoke, std::uint64_t ret,
                 tas_result outcome) {
  tas_op op;
  op.pid = pid;
  op.invoke_time = invoke;
  op.return_time = ret;
  op.outcome = outcome;
  return op;
}

tas_op running(process_id pid, std::uint64_t invoke) {
  tas_op op;
  op.pid = pid;
  op.invoke_time = invoke;
  return op;
}

tas_op crashed_at(process_id pid, std::uint64_t invoke) {
  tas_op op = running(pid, invoke);
  op.crashed = true;
  return op;
}

TEST(History, SingleWinnerOk) {
  const auto verdict = validate_tas_history({
      completed(0, 0, 10, tas_result::win),
      completed(1, 1, 12, tas_result::lose),
  });
  EXPECT_FALSE(verdict.has_value()) << *verdict;
}

TEST(History, TwoWinnersViolate) {
  const auto verdict = validate_tas_history({
      completed(0, 0, 10, tas_result::win),
      completed(1, 1, 12, tas_result::win),
  });
  ASSERT_TRUE(verdict.has_value());
  EXPECT_NE(verdict->find("multiple winners"), std::string::npos);
}

TEST(History, AllLoseViolates) {
  const auto verdict = validate_tas_history({
      completed(0, 0, 10, tas_result::lose),
      completed(1, 1, 12, tas_result::lose),
  });
  ASSERT_TRUE(verdict.has_value());
}

TEST(History, LoserReturnsBeforeWinnerInvokesViolates) {
  const auto verdict = validate_tas_history({
      completed(0, 20, 30, tas_result::win),
      completed(1, 1, 5, tas_result::lose),  // returned before invoke 20
  });
  ASSERT_TRUE(verdict.has_value());
  EXPECT_NE(verdict->find("before the winner invoked"), std::string::npos);
}

TEST(History, LoserReturnsAfterWinnerInvokesOk) {
  const auto verdict = validate_tas_history({
      completed(0, 4, 30, tas_result::win),
      completed(1, 1, 5, tas_result::lose),  // invoke 4 <= return 5
  });
  EXPECT_FALSE(verdict.has_value()) << *verdict;
}

TEST(History, CrashedPotentialWinnerExcusesLosers) {
  // Nobody won, but a participant that invoked early crashed mid-flight:
  // it linearizes as the winner.
  const auto verdict = validate_tas_history({
      crashed_at(0, 0),
      completed(1, 1, 12, tas_result::lose),
  });
  EXPECT_FALSE(verdict.has_value()) << *verdict;
}

TEST(History, LateCrashedCandidateCannotExcuseEarlyLoser) {
  // The only potential winner invoked after the loser had already
  // returned — no valid linearization.
  const auto verdict = validate_tas_history({
      crashed_at(0, 50),
      completed(1, 1, 12, tas_result::lose),
  });
  ASSERT_TRUE(verdict.has_value());
}

TEST(History, OnlyRunningOpsOk) {
  const auto verdict = validate_tas_history({
      running(0, 5),
      running(1, 9),
  });
  EXPECT_FALSE(verdict.has_value());
}

TEST(History, EmptyHistoryOk) {
  EXPECT_FALSE(validate_tas_history({}).has_value());
}

TEST(History, ReturnBeforeInvokeIsMalformed) {
  const auto verdict = validate_tas_history({
      completed(0, 10, 5, tas_result::win),
  });
  ASSERT_TRUE(verdict.has_value());
}

TEST(History, WinnerWithNoLosersOk) {
  const auto verdict = validate_tas_history({
      completed(0, 0, 10, tas_result::win),
      running(1, 2),
  });
  EXPECT_FALSE(verdict.has_value());
}

}  // namespace
}  // namespace elect::election
