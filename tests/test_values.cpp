// Unit + property tests for the replicated value types (engine/values.hpp)
// and the per-node store. The property tests check the semilattice laws
// the protocols depend on: merge is commutative, associative, idempotent.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "engine/store.hpp"
#include "engine/values.hpp"

namespace elect::engine {
namespace {

// -------------------------------------------------------- owned_array --

TEST(OwnedArray, StartsBottom) {
  owned_array<pp_status> a(4);
  for (process_id j = 0; j < 4; ++j) {
    EXPECT_TRUE(a.is_bottom(j));
    EXPECT_EQ(a.get(j), nullptr);
  }
}

TEST(OwnedArray, MergeCellKeepsNewest) {
  owned_array<std::int64_t> a(2);
  a.merge_cell(0, {1, 10});
  EXPECT_EQ(*a.get(0), 10);
  a.merge_cell(0, {3, 30});
  EXPECT_EQ(*a.get(0), 30);
  a.merge_cell(0, {2, 20});  // stale: lower seq
  EXPECT_EQ(*a.get(0), 30);
  EXPECT_EQ(a.seq_of(0), 3u);
}

TEST(OwnedArray, MergeIsIdempotent) {
  owned_array<std::int64_t> a(3);
  a.merge_cell(1, {5, 55});
  owned_array<std::int64_t> b = a;
  b.merge(a);
  EXPECT_EQ(a, b);
}

TEST(OwnedArray, MergeIsCommutative) {
  owned_array<std::int64_t> x(3), y(3);
  x.merge_cell(0, {1, 10});
  x.merge_cell(1, {2, 21});
  y.merge_cell(1, {3, 31});
  y.merge_cell(2, {1, 12});
  owned_array<std::int64_t> xy = x;
  xy.merge(y);
  owned_array<std::int64_t> yx = y;
  yx.merge(x);
  EXPECT_EQ(xy, yx);
}

// Randomized semilattice law sweep.
TEST(OwnedArray, RandomizedLatticeLaws) {
  rng_stream rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(6));
    const auto random_array = [&] {
      owned_array<std::int64_t> a(n);
      const int writes = static_cast<int>(rng.below(8));
      for (int w = 0; w < writes; ++w) {
        a.merge_cell(static_cast<process_id>(rng.below(n)),
                     {static_cast<std::uint32_t>(1 + rng.below(5)),
                      static_cast<std::int64_t>(rng.below(100))});
      }
      return a;
    };
    owned_array<std::int64_t> a = random_array();
    owned_array<std::int64_t> b = random_array();
    owned_array<std::int64_t> c = random_array();

    // Commutativity.
    auto ab = a;
    ab.merge(b);
    auto ba = b;
    ba.merge(a);
    // Note: with equal seq and different values, "newest" ties are broken
    // in favour of the local cell; our writers never reuse a seq, so ties
    // only occur for identical writes. Generate seqs per (slot,value) to
    // respect that: here we only check associativity/idempotence-safe
    // outcomes by re-checking equality of join results where ties did not
    // occur; simplest robust check: joining twice changes nothing.
    auto abb = ab;
    abb.merge(b);
    EXPECT_EQ(ab, abb);  // idempotence

    // Associativity.
    auto ab_c = ab;
    ab_c.merge(c);
    auto bc = b;
    bc.merge(c);
    auto a_bc = a;
    a_bc.merge(bc);
    EXPECT_EQ(ab_c, a_bc);

    (void)ba;
  }
}

// ----------------------------------------------------------- or types --

TEST(OrFlag, MonotoneMerge) {
  or_flag a, b;
  b.value = true;
  a.merge(b);
  EXPECT_TRUE(a.value);
  a.merge(or_flag{false});
  EXPECT_TRUE(a.value);  // once true, always true
}

TEST(OrFlags, SetAndMerge) {
  or_flags a(5), b(5);
  a.set(1);
  b.set(3);
  a.merge(b);
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(3));
  EXPECT_FALSE(a.test(0));
  EXPECT_EQ(a.count_set(), 2);
  EXPECT_EQ(a.set_indices(), (std::vector<std::uint32_t>{1, 3}));
}

TEST(OrFlags, MergeCommutesAndIdempotent) {
  or_flags a(4), b(4);
  a.set(0);
  b.set(0);
  b.set(2);
  or_flags ab = a;
  ab.merge(b);
  or_flags ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  or_flags abb = ab;
  abb.merge(b);
  EXPECT_EQ(ab, abb);
}

// ----------------------------------------------------- tagged_register --

TEST(TaggedRegister, MergeKeepsMaxTag) {
  tagged_register<std::int64_t> r{1, 0, 100};
  r.merge({2, 1, 200});
  EXPECT_EQ(r.value, 200);
  r.merge({2, 0, 300});  // same ts, lower writer: stale
  EXPECT_EQ(r.value, 200);
  r.merge({2, 2, 400});  // same ts, higher writer wins
  EXPECT_EQ(r.value, 400);
  r.merge({1, 5, 500});  // lower ts: stale
  EXPECT_EQ(r.value, 400);
}

// --------------------------------------------------------- merge_delta --

TEST(MergeDelta, CreatesDefaultOnFirstTouch) {
  var_value v;  // monostate
  merge_delta(v, cell_delta<std::int64_t>{2, {1, 42}}, 4);
  const auto* array = std::get_if<owned_array<std::int64_t>>(&v);
  ASSERT_NE(array, nullptr);
  EXPECT_EQ(array->size(), 4);
  EXPECT_EQ(*array->get(2), 42);
}

TEST(MergeDelta, FlagAndFlags) {
  var_value flag;
  merge_delta(flag, flag_delta{}, 3);
  EXPECT_TRUE(std::get<or_flag>(flag).value);

  var_value flags;
  merge_delta(flags, flags_delta{{0, 2}}, 3);
  EXPECT_TRUE(std::get<or_flags>(flags).test(0));
  EXPECT_FALSE(std::get<or_flags>(flags).test(1));
  EXPECT_TRUE(std::get<or_flags>(flags).test(2));
}

TEST(MergeDelta, MonostateDeltaIsNoop) {
  var_value v;
  merge_delta(v, var_delta{}, 3);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(v));
}

TEST(MergeValue, SnapshotMerge) {
  var_value a, b;
  merge_delta(a, cell_delta<std::int64_t>{0, {1, 10}}, 2);
  merge_delta(b, cell_delta<std::int64_t>{1, {1, 11}}, 2);
  merge_value(a, b, 2);
  const auto& array = std::get<owned_array<std::int64_t>>(a);
  EXPECT_EQ(*array.get(0), 10);
  EXPECT_EQ(*array.get(1), 11);
}

TEST(WireSize, GrowsWithContent) {
  var_value small;
  merge_delta(small, flags_delta{{1}}, 64);
  var_value arr;
  for (process_id j = 0; j < 32; ++j) {
    merge_delta(arr, cell_delta<std::int64_t>{j, {1, j}}, 64);
  }
  EXPECT_GT(wire_size(arr), wire_size(small));
  EXPECT_GE(wire_size(var_value{}), 1u);

  const var_delta het = cell_delta<het_status>{
      0, {1, het_status{pp_status::low_pri, {0, 1, 2, 3, 4}}}};
  const var_delta het_empty =
      cell_delta<het_status>{0, {1, het_status{pp_status::low_pri, {}}}};
  EXPECT_GT(wire_size(het), wire_size(het_empty));
}

// --------------------------------------------------------------- store --

TEST(Store, SnapshotOfUntouchedIsMonostate) {
  store s(4);
  const var_id id{var_family::test_i64_array, 0, 0};
  EXPECT_TRUE(std::holds_alternative<std::monostate>(s.snapshot(id)));
  EXPECT_EQ(s.find(id), nullptr);
}

TEST(Store, MergeAndView) {
  store s(4);
  const var_id id{var_family::test_i64_array, 7, 3};
  s.merge(id, cell_delta<std::int64_t>{1, {1, 99}});
  const auto* view = s.view<owned_array<std::int64_t>>(id);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(*view->get(1), 99);
  EXPECT_EQ(s.variable_count(), 1u);
}

TEST(Store, BumpSeqMonotone) {
  store s(2);
  const var_id a{var_family::test_i64_array, 0, 0};
  const var_id b{var_family::test_i64_array, 1, 0};
  EXPECT_EQ(s.bump_seq(a), 1u);
  EXPECT_EQ(s.bump_seq(a), 2u);
  EXPECT_EQ(s.bump_seq(b), 1u);  // independent per variable
}

TEST(Store, DistinctVarIdsAreIndependent) {
  store s(2);
  const var_id a{var_family::test_i64_array, 0, 0};
  const var_id b{var_family::test_i64_array, 0, 1};
  s.merge(a, cell_delta<std::int64_t>{0, {1, 5}});
  EXPECT_EQ(s.find(b), nullptr);
}

TEST(VarId, HashAndEquality) {
  const var_id a{var_family::door, 1, 2};
  const var_id b{var_family::door, 1, 2};
  const var_id c{var_family::door, 1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  var_id_hash h;
  EXPECT_EQ(h(a), h(b));
}

}  // namespace
}  // namespace elect::engine
