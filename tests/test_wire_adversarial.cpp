// Adversarial input for the wire layer: the deframer and codec must
// treat the byte stream as hostile. Corrupt hello magic/version,
// frame lengths past the 1 MiB cap, delivery one byte at a time,
// truncation at every possible offset, and raw-socket garbage against
// a live server — none of it may crash, hang, or smuggle a frame
// through; the worst allowed outcome is a dead connection.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using net::wire::frame_reader;

std::vector<std::uint8_t> length_prefix(std::uint32_t length) {
  std::vector<std::uint8_t> bytes(4);
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(length >> (8 * i));
  }
  return bytes;
}

// ---------------------------------------------------------------------
// frame_reader vs hostile lengths.

TEST(WireAdversarial, LengthAboveCapPoisonsTheReaderForever) {
  frame_reader reader;
  const auto prefix = length_prefix(net::wire::max_frame_bytes + 1);
  EXPECT_FALSE(reader.feed(prefix.data(), prefix.size()));
  EXPECT_TRUE(reader.poisoned());
  EXPECT_FALSE(reader.next().has_value());
  // Even well-formed bytes afterwards must be refused: the stream is
  // unsynchronized, resyncing would be guessing.
  const auto frame =
      net::wire::encode_request(net::wire::make_hello_request());
  EXPECT_FALSE(reader.feed(frame.data(), frame.size()));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(WireAdversarial, LengthExactlyAtCapIsFramedNotFatal) {
  frame_reader reader;
  std::vector<std::uint8_t> stream = length_prefix(net::wire::max_frame_bytes);
  stream.resize(4 + net::wire::max_frame_bytes, 0xAB);
  ASSERT_TRUE(reader.feed(stream.data(), stream.size()));
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->size(), net::wire::max_frame_bytes);
  // The body is garbage — the *codec* rejects it, the framing does not.
  EXPECT_FALSE(net::wire::decode_request(*body).has_value());
  EXPECT_FALSE(reader.poisoned());
}

TEST(WireAdversarial, MaximumLengthPrefixIsRejectedWithoutAllocating) {
  frame_reader reader;
  const auto prefix = length_prefix(0xFFFFFFFFu);
  EXPECT_FALSE(reader.feed(prefix.data(), prefix.size()));
  EXPECT_TRUE(reader.poisoned());
}

// ---------------------------------------------------------------------
// One byte at a time, and splits at every offset.

TEST(WireAdversarial, ByteAtATimeDeliveryReassemblesExactly) {
  net::wire::response a;
  a.id = 7;
  a.kind = net::wire::op::metrics;
  a.result = net::wire::status::ok;
  a.body = std::string(300, 'x');
  net::wire::response b = net::wire::make_hello_response(42);
  b.id = 8;

  std::vector<std::uint8_t> stream;
  for (const auto& r : {a, b}) {
    const auto frame = net::wire::encode_response(r);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  frame_reader reader;
  std::vector<net::wire::response> seen;
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(reader.feed(&byte, 1));
    while (auto body = reader.next()) {
      const auto decoded = net::wire::decode_response(*body);
      ASSERT_TRUE(decoded.has_value());
      seen.push_back(*decoded);
    }
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].id, 7u);
  EXPECT_EQ(seen[0].body, a.body);
  EXPECT_EQ(seen[1].id, 8u);
  EXPECT_EQ(seen[1].epoch, 42u);
}

TEST(WireAdversarial, SplitAtEveryOffsetYieldsTheSameFrames) {
  net::wire::request a;
  a.id = 1;
  a.kind = net::wire::op::try_acquire;
  a.key = "k/split";
  net::wire::request b;
  b.id = 2;
  b.kind = net::wire::op::release_fenced;
  b.key = "k/other";
  b.epoch = 5;

  std::vector<std::uint8_t> stream;
  for (const auto& r : {a, b}) {
    const auto frame = net::wire::encode_request(r);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    frame_reader reader;
    std::size_t frames = 0;
    if (split > 0) ASSERT_TRUE(reader.feed(stream.data(), split));
    while (reader.next().has_value()) ++frames;
    // A truncated prefix must never yield a frame the full stream
    // would not: at most the frames wholly contained in the prefix.
    if (split < stream.size()) {
      ASSERT_TRUE(
          reader.feed(stream.data() + split, stream.size() - split));
    }
    while (auto body = reader.next()) {
      ASSERT_TRUE(net::wire::decode_request(*body).has_value());
      ++frames;
    }
    EXPECT_EQ(frames, 2u) << "split at " << split;
    EXPECT_FALSE(reader.poisoned());
  }
}

// ---------------------------------------------------------------------
// Codec truncation at every offset.

TEST(WireAdversarial, TruncatedRequestBodyNeverDecodes) {
  net::wire::request r;
  r.id = 0xDEADBEEFCAFEull;
  r.kind = net::wire::op::try_acquire_for;
  r.key = "locks/truncate-me";
  r.epoch = 17;
  r.timeout_ms = 1234;
  const auto frame = net::wire::encode_request(r);
  const std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  for (std::size_t keep = 0; keep < body.size(); ++keep) {
    const std::vector<std::uint8_t> cut(body.begin(),
                                        body.begin() +
                                            static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(net::wire::decode_request(cut).has_value())
        << "decoded a request from a " << keep << "-byte prefix";
  }
  EXPECT_TRUE(net::wire::decode_request(body).has_value());
}

TEST(WireAdversarial, TruncatedResponseBodyNeverDecodes) {
  net::wire::response r;
  r.id = 99;
  r.kind = net::wire::op::event;
  r.result = net::wire::status::ok;
  r.flags = 2;
  r.epoch = 3;
  r.body = "watched/key";
  const auto frame = net::wire::encode_response(r);
  const std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  for (std::size_t keep = 0; keep < body.size(); ++keep) {
    const std::vector<std::uint8_t> cut(body.begin(),
                                        body.begin() +
                                            static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(net::wire::decode_response(cut).has_value())
        << "decoded a response from a " << keep << "-byte prefix";
  }
  EXPECT_TRUE(net::wire::decode_response(body).has_value());
}

// ---------------------------------------------------------------------
// Hello corruption and the event push frame.

TEST(WireAdversarial, CorruptHelloMagicOrVersionIsRejected) {
  net::wire::request good = net::wire::make_hello_request();
  ASSERT_TRUE(net::wire::hello_version_ok(good));

  net::wire::request bad_magic = good;
  bad_magic.epoch ^= 0x0100000000ull;  // flip a magic bit
  EXPECT_FALSE(net::wire::hello_version_ok(bad_magic));

  net::wire::request bad_version = good;
  bad_version.epoch ^= 1;  // version field lives in the low bits
  EXPECT_FALSE(net::wire::hello_version_ok(bad_version));

  net::wire::request wrong_op = good;
  wrong_op.kind = net::wire::op::try_acquire;
  EXPECT_FALSE(net::wire::hello_version_ok(wrong_op));
}

TEST(WireAdversarial, EventFramesRoundTripAndRejectMalformedKinds) {
  svc::watch_event e;
  e.key = "watched/key";
  e.epoch = 41;
  e.kind = svc::transition::expired;
  e.session = -1;
  const net::wire::response frame = net::wire::make_event(e);
  const auto parsed = net::wire::parse_event(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, e.key);
  EXPECT_EQ(parsed->epoch, e.epoch);
  EXPECT_EQ(parsed->kind, e.kind);
  EXPECT_EQ(parsed->session, -1);

  net::wire::response bad_kind = frame;
  bad_kind.flags = 7;  // not a transition value
  EXPECT_FALSE(net::wire::parse_event(bad_kind).has_value());

  net::wire::response not_event = frame;
  not_event.kind = net::wire::op::metrics;
  EXPECT_FALSE(net::wire::parse_event(not_event).has_value());
}

// ---------------------------------------------------------------------
// A live server vs a raw hostile socket.

class raw_socket {
 public:
  explicit raw_socket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~raw_socket() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Drain until EOF; true when the peer closed the connection.
  [[nodiscard]] bool closed_by_peer(
      std::vector<std::uint8_t>* received = nullptr) {
    std::uint8_t buffer[4096];
    for (;;) {
      const ssize_t got = ::recv(fd_, buffer, sizeof buffer, 0);
      if (got == 0) return true;
      if (got < 0) return errno == EINTR ? closed_by_peer(received) : false;
      if (received != nullptr) {
        received->insert(received->end(), buffer, buffer + got);
      }
    }
  }

 private:
  int fd_ = -1;
};

struct server_rig {
  server_rig()
      : service(svc::service_config{.nodes = 2, .shards = 2, .seed = 3}),
        server(service, net::server_config{}) {}
  svc::service service;
  net::server server;
};

TEST(WireAdversarial, ServerKillsConnectionOnOversizedFrame) {
  server_rig rig;
  ASSERT_TRUE(rig.server.listening());
  raw_socket attacker(rig.server.port());
  ASSERT_TRUE(attacker.ok());
  attacker.send_bytes(length_prefix(net::wire::max_frame_bytes + 1));
  EXPECT_TRUE(attacker.closed_by_peer());
  EXPECT_GE(rig.server.report().protocol_errors, 1u);
  // The server survives: a well-behaved client still gets service.
  net::client fine("127.0.0.1", rig.server.port());
  ASSERT_TRUE(fine.connected());
  EXPECT_TRUE(fine.try_acquire("still/alive").won);
}

TEST(WireAdversarial, ServerRejectsRequestsBeforeHello) {
  server_rig rig;
  ASSERT_TRUE(rig.server.listening());
  raw_socket sneaky(rig.server.port());
  ASSERT_TRUE(sneaky.ok());
  net::wire::request premature;
  premature.id = 9;
  premature.kind = net::wire::op::acquire;
  premature.key = "no/handshake";
  sneaky.send_bytes(net::wire::encode_request(premature));
  std::vector<std::uint8_t> answer;
  EXPECT_TRUE(sneaky.closed_by_peer(&answer));
  // The one-shot bad_request answer (id echoed) precedes the close.
  net::wire::frame_reader reader;
  ASSERT_TRUE(reader.feed(answer.data(), answer.size()));
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = net::wire::decode_response(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result, net::wire::status::bad_request);
}

TEST(WireAdversarial, ServerRejectsStaleProtocolVersion) {
  server_rig rig;
  ASSERT_TRUE(rig.server.listening());
  raw_socket old_peer(rig.server.port());
  ASSERT_TRUE(old_peer.ok());
  net::wire::request hello = net::wire::make_hello_request();
  hello.id = 1;
  hello.epoch ^= 3;  // pretend to speak another version
  old_peer.send_bytes(net::wire::encode_request(hello));
  std::vector<std::uint8_t> answer;
  EXPECT_TRUE(old_peer.closed_by_peer(&answer));
  net::wire::frame_reader reader;
  ASSERT_TRUE(reader.feed(answer.data(), answer.size()));
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = net::wire::decode_response(*body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result, net::wire::status::bad_request);
}

}  // namespace
}  // namespace elect
