// elect::repl tests: cluster config parsing/validation, the replicated
// log container, the new wire statuses (not_primary / connection_lost)
// and peer ops, the follower side of replication driven directly
// through handle_peer (append/commit/apply, conflicting-tail
// truncation, replay-rejection forcing a snapshot request, snapshot
// install healing a seq gap, one-shot votes with the log-up-to-date
// check), and full in-process clusters over loopback: single-primary
// election, redirect-following clients, epoch-fenced failover with a
// held lease, and a late follower catching up via snapshot + suffix.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "cmd/command.hpp"
#include "cmd/log_entry.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "repl/config.hpp"
#include "repl/log.hpp"
#include "repl/node.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------
// Cluster configuration.

TEST(ReplConfig, ParseEndpointAcceptsHostPortRejectsMalformed) {
  const auto good = repl::parse_endpoint("10.0.0.7:7400");
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->host, "10.0.0.7");
  EXPECT_EQ(good->port, 7400);
  EXPECT_EQ(good->to_string(), "10.0.0.7:7400");

  EXPECT_FALSE(repl::parse_endpoint("no-colon").has_value());
  EXPECT_FALSE(repl::parse_endpoint(":7400").has_value());
  EXPECT_FALSE(repl::parse_endpoint("host:").has_value());
  EXPECT_FALSE(repl::parse_endpoint("host:0").has_value());
  EXPECT_FALSE(repl::parse_endpoint("host:65536").has_value());
  EXPECT_FALSE(repl::parse_endpoint("host:7x0").has_value());
}

TEST(ReplConfig, ParseEndpointsSplitsListAndRejectsFirstBadElement) {
  const auto list = repl::parse_endpoints("a:1,b:2,c:3");
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[1].to_string(), "b:2");

  EXPECT_FALSE(repl::parse_endpoints("a:1,broken,c:3").has_value());
  const auto empty = repl::parse_endpoints("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(ReplConfig, ValidateCatchesEachMisconfiguration) {
  repl::cluster_config good;
  good.members = {{"a", 1}, {"b", 2}, {"c", 3}};
  good.self = 1;
  EXPECT_FALSE(good.validate().has_value());
  EXPECT_EQ(good.quorum(), 2);

  repl::cluster_config c = good;
  c.members.clear();
  EXPECT_TRUE(c.validate().has_value());

  c = good;
  c.self = 3;
  EXPECT_TRUE(c.validate().has_value());

  c = good;
  c.fence_bump = 0;
  EXPECT_TRUE(c.validate().has_value());

  c = good;
  c.election_timeout_min_ms = c.heartbeat_ms * 2;  // must strictly exceed
  EXPECT_TRUE(c.validate().has_value());

  c = good;
  c.election_timeout_max_ms = c.election_timeout_min_ms - 1;
  EXPECT_TRUE(c.validate().has_value());
}

// ---------------------------------------------------------------------
// The replicated log container.

cmd::log_entry entry_at_term(std::uint64_t term) {
  cmd::log_entry e;
  e.term = term;
  return e;
}

TEST(ReplLog, AppendTruncateSliceAndTermQueries) {
  repl::replicated_log log;
  EXPECT_EQ(log.last_index(), 0u);
  EXPECT_EQ(log.first_index(), 1u);

  log.append(entry_at_term(1));
  log.append(entry_at_term(1));
  log.append(entry_at_term(2));
  EXPECT_EQ(log.last_index(), 3u);
  EXPECT_EQ(log.term_at(2), 1u);
  EXPECT_EQ(log.term_at(3), 2u);
  EXPECT_EQ(log.last_term(), 2u);
  EXPECT_EQ(log.term_at(4), 0u);  // past the end

  const auto batch = log.slice(1, 3);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[1].term, 2u);

  log.truncate_from(3);
  EXPECT_EQ(log.last_index(), 2u);
  EXPECT_EQ(log.last_term(), 1u);
  log.truncate_from(10);  // no-op past the end
  EXPECT_EQ(log.last_index(), 2u);
}

TEST(ReplLog, CompactionKeepsTheSuffixAndResetRestarts) {
  repl::replicated_log log;
  for (int i = 0; i < 4; ++i) log.append(entry_at_term(1));

  log.compact_to(2, 1, {0xAA, 0xBB});
  EXPECT_EQ(log.snapshot_last_index(), 2u);
  EXPECT_EQ(log.snapshot_last_term(), 1u);
  EXPECT_EQ(log.first_index(), 3u);
  EXPECT_EQ(log.last_index(), 4u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.term_at(2), 1u);  // the compaction boundary keeps its term
  EXPECT_EQ(log.term_at(1), 0u);  // below it is gone

  log.truncate_from(1);  // at-or-below the snapshot: only entries drop
  EXPECT_EQ(log.last_index(), 2u);
  EXPECT_EQ(log.size(), 0u);

  log.reset_to(10, 4, {0x01});
  EXPECT_EQ(log.last_index(), 10u);
  EXPECT_EQ(log.last_term(), 4u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.snapshot_bytes().size(), 1u);
}

// ---------------------------------------------------------------------
// Wire: the cluster-era statuses and peer ops survive the codec.

TEST(ReplWire, ConnectionLostStatusRoundTrips) {
  net::wire::response r;
  r.id = 11;
  r.kind = net::wire::op::try_acquire;
  r.result = net::wire::status::connection_lost;
  const auto frame = net::wire::encode_response(r);
  const std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  const auto decoded = net::wire::decode_response(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result, net::wire::status::connection_lost);
}

TEST(ReplWire, NotPrimaryRedirectCarriesTheEndpointHint) {
  net::wire::response r;
  r.id = 12;
  r.kind = net::wire::op::renew;
  r.result = net::wire::status::not_primary;
  r.body = "10.1.2.3:7410";
  const auto frame = net::wire::encode_response(r);
  const std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  const auto decoded = net::wire::decode_response(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result, net::wire::status::not_primary);
  EXPECT_EQ(decoded->body, "10.1.2.3:7410");
}

TEST(ReplWire, PeerOpsRoundTripWithOpaqueBodies) {
  for (const auto kind : {net::wire::op::peer_vote, net::wire::op::peer_append,
                          net::wire::op::peer_snapshot}) {
    net::wire::request r;
    r.id = 99;
    r.kind = kind;
    r.body = std::string("\x01\x02\x03\xFF", 4);
    const auto frame = net::wire::encode_request(r);
    const std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
    const auto decoded = net::wire::decode_request(body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->kind, kind);
    EXPECT_EQ(decoded->body, r.body);
  }
}

// ---------------------------------------------------------------------
// The follower side of replication, driven directly through
// handle_peer. The peer envelopes are file-local to node.cpp, so the
// tests mirror the codec (a drift here is a wire break worth failing
// on). Election timeouts are set far past the test runtime and the
// node is never start()ed: it stays a pure follower.

struct vote_req {
  std::uint64_t term = 0;
  std::int32_t candidate = -1;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;
};

struct append_req {
  std::uint64_t term = 0;
  std::int32_t leader = -1;
  std::uint64_t prev_index = 0;
  std::uint64_t prev_term = 0;
  std::uint64_t leader_commit = 0;
  std::vector<cmd::log_entry> entries;
};

struct snap_req {
  std::uint64_t term = 0;
  std::int32_t leader = -1;
  std::uint64_t last_index = 0;
  std::uint64_t last_term = 0;
  std::string bytes;
};

std::string encode_body(const vote_req& v) {
  cmd::byte_writer out;
  out.u64(v.term);
  out.i32(v.candidate);
  out.u64(v.last_log_index);
  out.u64(v.last_log_term);
  return out.take();
}

std::string encode_body(const append_req& a) {
  cmd::byte_writer out;
  out.u64(a.term);
  out.i32(a.leader);
  out.u64(a.prev_index);
  out.u64(a.prev_term);
  out.u64(a.leader_commit);
  out.u32(static_cast<std::uint32_t>(a.entries.size()));
  for (const cmd::log_entry& e : a.entries) {
    out.u64(e.term);
    cmd::encode_command(out, e.change);
  }
  return out.take();
}

std::string encode_body(const snap_req& s) {
  cmd::byte_writer out;
  out.u64(s.term);
  out.i32(s.leader);
  out.u64(s.last_index);
  out.u64(s.last_term);
  out.str(s.bytes);
  return out.take();
}

struct vote_resp {
  std::uint64_t term = 0;
  bool granted = false;
};

struct append_resp {
  std::uint64_t term = 0;
  bool success = false;
  std::uint64_t match_hint = 0;
  bool need_snapshot = false;
};

struct snap_resp {
  std::uint64_t term = 0;
  bool ok = false;
};

vote_resp decode_vote(const std::string& body) {
  cmd::byte_reader in(body);
  vote_resp v;
  std::uint8_t granted = 0;
  EXPECT_TRUE(in.u64(v.term) && in.u8(granted) && in.exhausted());
  v.granted = granted != 0;
  return v;
}

append_resp decode_append(const std::string& body) {
  cmd::byte_reader in(body);
  append_resp a;
  std::uint8_t success = 0;
  std::uint8_t need = 0;
  EXPECT_TRUE(in.u64(a.term) && in.u8(success) && in.u64(a.match_hint) &&
              in.u8(need) && in.exhausted());
  a.success = success != 0;
  a.need_snapshot = need != 0;
  return a;
}

snap_resp decode_snap(const std::string& body) {
  cmd::byte_reader in(body);
  snap_resp s;
  std::uint8_t ok = 0;
  EXPECT_TRUE(in.u64(s.term) && in.u8(ok) && in.exhausted());
  s.ok = ok != 0;
  return s;
}

template <typename Body>
net::wire::request peer_request(net::wire::op kind, const Body& body) {
  net::wire::request r;
  r.id = 1;
  r.kind = kind;
  r.body = encode_body(body);
  return r;
}

struct follower_harness {
  follower_harness()
      : service({.nodes = 4, .shards = 2, .record_commands = true}),
        node(make_config(), service) {}

  static repl::cluster_config make_config() {
    repl::cluster_config c;
    // Nobody listens on these; the node is never started, so it never
    // dials out and never times out into a candidacy.
    c.members = {{"127.0.0.1", 1}, {"127.0.0.1", 2}, {"127.0.0.1", 3}};
    c.self = 0;
    c.election_timeout_min_ms = 3'600'000;
    c.election_timeout_max_ms = 7'200'000;
    return c;
  }

  cmd::command grant(const std::string& key, std::uint64_t seq, int session,
                     std::uint64_t epoch) {
    cmd::command c;
    c.seq = seq;
    c.shard = service.registry().shard_of(key);
    c.kind = cmd::command_kind::acquire_granted;
    c.key = key;
    c.session = session;
    c.epoch = epoch;
    c.mode = cmd::grant_mode_protocol;
    c.at_ms = 10 * seq;
    return c;
  }

  cmd::command release(const std::string& key, std::uint64_t seq, int session,
                       std::uint64_t epoch) {
    cmd::command c;
    c.seq = seq;
    c.shard = service.registry().shard_of(key);
    c.kind = cmd::command_kind::released;
    c.key = key;
    c.session = session;
    c.epoch = epoch;
    c.at_ms = 10 * seq;
    return c;
  }

  static cmd::log_entry at_term(std::uint64_t term, cmd::command c) {
    cmd::log_entry e;
    e.term = term;
    e.change = std::move(c);
    return e;
  }

  svc::service service;
  repl::node node;
};

TEST(ReplNode, FollowerAppendsThenAppliesOnlyOnceCommitted) {
  follower_harness h;

  append_req first;
  first.term = 1;
  first.leader = 1;
  first.entries.push_back(
      follower_harness::at_term(1, h.grant("locks/a", 1, 7, 0)));
  auto resp = h.node.handle_peer(
      peer_request(net::wire::op::peer_append, first));
  ASSERT_EQ(resp.result, net::wire::status::ok);
  auto a = decode_append(resp.body);
  EXPECT_TRUE(a.success);
  EXPECT_EQ(a.match_hint, 1u);
  // Uncommitted: the entry lives in the log only, not the registry.
  EXPECT_EQ(h.node.commit_index(), 0u);
  EXPECT_FALSE(h.service.registry().inspect("locks/a").has_value());

  append_req heartbeat;
  heartbeat.term = 1;
  heartbeat.leader = 1;
  heartbeat.prev_index = 1;
  heartbeat.prev_term = 1;
  heartbeat.leader_commit = 1;
  resp = h.node.handle_peer(
      peer_request(net::wire::op::peer_append, heartbeat));
  a = decode_append(resp.body);
  EXPECT_TRUE(a.success);
  EXPECT_EQ(h.node.commit_index(), 1u);
  const auto state = h.service.registry().inspect("locks/a");
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->leader, 7);
  EXPECT_EQ(state->entry.epoch, 0u);
}

TEST(ReplNode, ConflictingUncommittedTailIsTruncatedByTheNewTerm) {
  follower_harness h;

  // Term 1 ships two entries but only commits the first; the second is
  // a dead primary's unacked tail.
  append_req old_primary;
  old_primary.term = 1;
  old_primary.leader = 1;
  old_primary.leader_commit = 1;
  old_primary.entries.push_back(
      follower_harness::at_term(1, h.grant("locks/b", 1, 7, 0)));
  old_primary.entries.push_back(
      follower_harness::at_term(1, h.release("locks/b", 2, 7, 0)));
  auto a = decode_append(
      h.node.handle_peer(peer_request(net::wire::op::peer_append, old_primary))
          .body);
  ASSERT_TRUE(a.success);
  ASSERT_EQ(h.node.commit_index(), 1u);

  // The new term's history disagrees at index 2: the follower must
  // truncate its tail and accept the replacement.
  append_req new_primary;
  new_primary.term = 2;
  new_primary.leader = 2;
  new_primary.prev_index = 1;
  new_primary.prev_term = 1;
  new_primary.leader_commit = 2;
  new_primary.entries.push_back(
      follower_harness::at_term(2, h.release("locks/b", 2, 7, 0)));
  a = decode_append(
      h.node.handle_peer(peer_request(net::wire::op::peer_append, new_primary))
          .body);
  EXPECT_TRUE(a.success);
  EXPECT_FALSE(a.need_snapshot);
  EXPECT_EQ(a.match_hint, 2u);
  EXPECT_EQ(h.node.commit_index(), 2u);
  EXPECT_EQ(h.node.current_term(), 2u);
  // The release applied: the epoch ended and the key reopened.
  const auto state = h.service.registry().inspect("locks/b");
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->leader, -1);
}

TEST(ReplNode, SeqGapRejectsReplayAndSnapshotInstallHeals) {
  follower_harness h;

  append_req first;
  first.term = 1;
  first.leader = 1;
  first.leader_commit = 1;
  first.entries.push_back(
      follower_harness::at_term(1, h.grant("locks/c", 1, 7, 0)));
  ASSERT_TRUE(decode_append(h.node
                                .handle_peer(peer_request(
                                    net::wire::op::peer_append, first))
                                .body)
                  .success);

  // seq 3 after seq 1 is a replay gap: the registry refuses, and the
  // follower must demand a snapshot rather than diverge silently.
  append_req gap;
  gap.term = 1;
  gap.leader = 1;
  gap.prev_index = 1;
  gap.prev_term = 1;
  gap.leader_commit = 2;
  gap.entries.push_back(
      follower_harness::at_term(1, h.release("locks/c", 3, 7, 0)));
  auto a = decode_append(
      h.node.handle_peer(peer_request(net::wire::op::peer_append, gap)).body);
  EXPECT_TRUE(a.need_snapshot);

  // Every later append keeps answering need_snapshot until an install.
  append_req heartbeat;
  heartbeat.term = 1;
  heartbeat.leader = 1;
  heartbeat.prev_index = 2;
  heartbeat.prev_term = 1;
  a = decode_append(
      h.node.handle_peer(peer_request(net::wire::op::peer_append, heartbeat))
          .body);
  EXPECT_TRUE(a.need_snapshot);
  EXPECT_FALSE(a.success);

  // Build the primary's true state (grant, release, regrant) in a
  // scratch registry with the same shape and install it.
  svc::service scratch({.nodes = 4, .shards = 2});
  ASSERT_FALSE(scratch.registry().apply(h.grant("locks/c", 1, 7, 0)));
  ASSERT_FALSE(scratch.registry().apply(h.release("locks/c", 2, 7, 0)));
  ASSERT_FALSE(scratch.registry().apply(h.grant("locks/c", 3, 8, 1)));
  const auto bytes = scratch.registry().snapshot();

  snap_req install;
  install.term = 1;
  install.leader = 1;
  install.last_index = 3;
  install.last_term = 1;
  install.bytes.assign(bytes.begin(), bytes.end());
  const auto s = decode_snap(
      h.node.handle_peer(peer_request(net::wire::op::peer_snapshot, install))
          .body);
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(h.node.commit_index(), 3u);
  EXPECT_EQ(h.node.counters().snapshots_installed, 1u);

  const auto healed = h.service.registry().inspect("locks/c");
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->leader, 8);
  EXPECT_EQ(healed->entry.epoch, 1u);

  // The suffix resumes past the snapshot: appends work again.
  append_req suffix;
  suffix.term = 1;
  suffix.leader = 1;
  suffix.prev_index = 3;
  suffix.prev_term = 1;
  suffix.leader_commit = 4;
  suffix.entries.push_back(
      follower_harness::at_term(1, h.release("locks/c", 4, 8, 1)));
  a = decode_append(
      h.node.handle_peer(peer_request(net::wire::op::peer_append, suffix))
          .body);
  EXPECT_TRUE(a.success);
  EXPECT_FALSE(a.need_snapshot);
  EXPECT_EQ(h.node.commit_index(), 4u);
}

TEST(ReplNode, VotesAreOneShotPerTermAndCheckLogFreshness) {
  follower_harness h;

  // Give the follower two entries at term 1 so freshness has teeth.
  append_req seed;
  seed.term = 1;
  seed.leader = 1;
  seed.leader_commit = 1;
  seed.entries.push_back(
      follower_harness::at_term(1, h.grant("locks/d", 1, 7, 0)));
  seed.entries.push_back(
      follower_harness::at_term(1, h.release("locks/d", 2, 7, 0)));
  ASSERT_TRUE(decode_append(h.node
                                .handle_peer(peer_request(
                                    net::wire::op::peer_append, seed))
                                .body)
                  .success);

  vote_req fresh{.term = 2, .candidate = 1, .last_log_index = 2,
                 .last_log_term = 1};
  auto v = decode_vote(
      h.node.handle_peer(peer_request(net::wire::op::peer_vote, fresh)).body);
  EXPECT_TRUE(v.granted);
  EXPECT_EQ(v.term, 2u);

  // Same term, different candidate: the vote is spent.
  vote_req rival{.term = 2, .candidate = 2, .last_log_index = 9,
                 .last_log_term = 1};
  v = decode_vote(
      h.node.handle_peer(peer_request(net::wire::op::peer_vote, rival)).body);
  EXPECT_FALSE(v.granted);

  // Higher term but a stale log: refused — a winner missing committed
  // entries could roll back acked grants.
  vote_req stale{.term = 3, .candidate = 2, .last_log_index = 1,
                 .last_log_term = 1};
  v = decode_vote(
      h.node.handle_peer(peer_request(net::wire::op::peer_vote, stale)).body);
  EXPECT_FALSE(v.granted);
  EXPECT_EQ(v.term, 3u);

  // The higher term reset the one-shot: a fresh candidate gets it.
  vote_req retry{.term = 3, .candidate = 1, .last_log_index = 2,
                 .last_log_term = 1};
  v = decode_vote(
      h.node.handle_peer(peer_request(net::wire::op::peer_vote, retry)).body);
  EXPECT_TRUE(v.granted);
}

// ---------------------------------------------------------------------
// Full in-process clusters over loopback.

/// Reserve an ephemeral port: bind, read it back, close. The tiny
/// reuse race is acceptable for tests.
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// An n-member cluster in one process: each member is a service + repl
/// node + net server, wired exactly as elect_server does it. Members
/// can be started late (snapshot catch-up) and stopped (failover).
struct cluster_harness {
  explicit cluster_harness(int n, std::uint64_t lease_ttl_ms = 0,
                           std::uint64_t fence_bump = 1000,
                           std::uint64_t compact_threshold = 8192) {
    for (int i = 0; i < n; ++i) {
      ports.push_back(reserve_port());
    }
    base.fence_bump = fence_bump;
    base.compact_threshold = compact_threshold;
    base.heartbeat_ms = 25;
    base.commit_wait_ms = 3000;
    base.seed = 42;
    for (int i = 0; i < n; ++i) {
      base.members.push_back({"127.0.0.1", ports[static_cast<std::size_t>(i)]});
    }
    services.resize(static_cast<std::size_t>(n));
    nodes.resize(static_cast<std::size_t>(n));
    servers.resize(static_cast<std::size_t>(n));
    ttl = lease_ttl_ms;
  }

  ~cluster_harness() {
    for (auto& s : servers) {
      if (s) s->stop();
    }
    for (auto& m : nodes) {
      if (m) m->stop();
    }
  }

  /// Member 0 gets a short election timeout so it reliably wins the
  /// first term; the rest hang back but stay viable for failover.
  void start_member(int i) {
    const auto idx = static_cast<std::size_t>(i);
    svc::service_config sc{.nodes = 4, .shards = 2};
    sc.lease_ttl_ms = ttl;
    sc.record_commands = true;
    sc.session_id_base = i << 24;
    services[idx] = std::make_unique<svc::service>(std::move(sc));

    repl::cluster_config cc = base;
    cc.self = i;
    cc.election_timeout_min_ms = i == 0 ? 100 : 400;
    cc.election_timeout_max_ms = i == 0 ? 150 : 700;
    nodes[idx] = std::make_unique<repl::node>(cc, *services[idx]);
    nodes[idx]->start();

    net::server_config nc;
    nc.bind_address = "127.0.0.1";
    nc.port = ports[idx];
    repl::node* node = nodes[idx].get();
    nc.cluster.is_primary = [node] { return node->is_primary(); };
    nc.cluster.primary_hint = [node] { return node->primary_endpoint(); };
    nc.cluster.peer = [node](const net::wire::request& r) {
      return node->handle_peer(r);
    };
    nc.cluster.status_json = [node] { return node->status_json(); };
    nc.cluster.prom_text = [node] { return node->prom_text(); };
    servers[idx] = std::make_unique<net::server>(*services[idx], nc);
    ASSERT_TRUE(servers[idx]->listening());
  }

  void start_all() {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      start_member(static_cast<int>(i));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  void stop_member(int i) {
    const auto idx = static_cast<std::size_t>(i);
    servers[idx]->stop();
    nodes[idx]->stop();
    stopped.insert(i);
  }

  /// Index of the current primary among live members, -1 if none. A
  /// stopped node's in-memory role is stale (it believes whatever it
  /// believed when its threads died), so it is excluded.
  [[nodiscard]] int primary() const {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (stopped.count(static_cast<int>(i)) != 0) continue;
      if (nodes[i] && nodes[i]->is_primary()) return static_cast<int>(i);
    }
    return -1;
  }

  [[nodiscard]] int wait_for_primary(std::chrono::milliseconds limit) const {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
      const int p = primary();
      if (p >= 0) return p;
      std::this_thread::sleep_for(10ms);
    }
    return -1;
  }

  [[nodiscard]] std::string endpoints_csv() const {
    std::string out;
    for (const auto& m : base.members) {
      if (!out.empty()) out += ",";
      out += m.to_string();
    }
    return out;
  }

  std::vector<std::uint16_t> ports;
  repl::cluster_config base;
  std::uint64_t ttl = 0;
  std::set<int> stopped;
  std::vector<std::unique_ptr<svc::service>> services;
  std::vector<std::unique_ptr<repl::node>> nodes;
  std::vector<std::unique_ptr<net::server>> servers;
};

TEST(ReplCluster, ElectsOnePrimaryAndServesAcquiresThroughAnyEndpoint) {
  cluster_harness cluster(3);
  cluster.start_all();
  const int p = cluster.wait_for_primary(10s);
  ASSERT_GE(p, 0);
  EXPECT_NE(cluster.nodes[static_cast<std::size_t>(p)]
                ->status_json()
                .find("\"role\":\"primary\""),
            std::string::npos);

  // Exactly one primary among the members.
  int primaries = 0;
  for (const auto& n : cluster.nodes) {
    if (n->is_primary()) ++primaries;
  }
  EXPECT_EQ(primaries, 1);

  api::client client(cluster.endpoints_csv());
  ASSERT_TRUE(client.connected());
  auto got = client.try_acquire("locks/one");
  ASSERT_TRUE(got.won());
  EXPECT_EQ(got.epoch, 0u);
  EXPECT_EQ(got.lease.release(), api::lease_status::ok);
}

TEST(ReplCluster, FollowerFirstEndpointListStillLandsOnThePrimary) {
  cluster_harness cluster(3);
  cluster.start_all();
  const int p = cluster.wait_for_primary(10s);
  ASSERT_GE(p, 0);

  // Order the endpoint list so a follower comes first: the client must
  // chase the not_primary redirect to win.
  std::string csv;
  for (int off = 1; off <= 3; ++off) {
    const auto& m =
        cluster.base.members[static_cast<std::size_t>((p + off) % 3)];
    if (!csv.empty()) csv += ",";
    csv += m.to_string();
  }
  api::client client(csv);
  ASSERT_TRUE(client.connected());
  auto got = client.try_acquire("locks/redirected");
  ASSERT_TRUE(got.won());
  got.lease.abandon();
}

TEST(ReplCluster, FailoverFencesAHeldLeaseNeverSilentlyRegrantsIt) {
  cluster_harness cluster(3, /*lease_ttl_ms=*/800, /*fence_bump=*/1000);
  cluster.start_all();
  const int old_primary = cluster.wait_for_primary(10s);
  ASSERT_GE(old_primary, 0);

  api::client holder(cluster.endpoints_csv());
  ASSERT_TRUE(holder.connected());
  auto got = holder.try_acquire("locks/failover");
  ASSERT_TRUE(got.won());
  const std::uint64_t old_epoch = got.epoch;

  cluster.stop_member(old_primary);

  // A new primary must emerge from the survivors.
  const auto deadline = std::chrono::steady_clock::now() + 15s;
  int new_primary = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    new_primary = cluster.primary();
    if (new_primary >= 0 && new_primary != old_primary) break;
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_GE(new_primary, 0);
  ASSERT_NE(new_primary, old_primary);

  // The survivor fenced at promotion: a fresh contender must either be
  // refused (while the replica lease runs out) or win an epoch past
  // the fence bump. Seeing the old epoch again would be the silent
  // double grant the whole design exists to prevent.
  api::client contender(cluster.endpoints_csv());
  std::optional<std::uint64_t> won_epoch;
  while (std::chrono::steady_clock::now() < deadline) {
    auto attempt = contender.try_acquire("locks/failover");
    if (attempt.won()) {
      won_epoch = attempt.epoch;
      attempt.lease.abandon();
      break;
    }
    std::this_thread::sleep_for(50ms);
  }
  ASSERT_TRUE(won_epoch.has_value());
  EXPECT_GT(*won_epoch, old_epoch);
  EXPECT_GE(*won_epoch, cluster.base.fence_bump);

  // The deposed holder's auto-renew hits the fence and marks the lease
  // lost (it cannot keep believing in a dead primary's grant).
  const auto lost_deadline = std::chrono::steady_clock::now() + 10s;
  while (!got.lease.lost() &&
         std::chrono::steady_clock::now() < lost_deadline) {
    std::this_thread::sleep_for(50ms);
  }
  EXPECT_TRUE(got.lease.lost());
}

TEST(ReplCluster, LateFollowerCatchesUpViaSnapshotThenSuffix) {
  // Tiny compaction threshold: the primary compacts its log early, so
  // the late member cannot converge by appends alone.
  cluster_harness cluster(3, /*lease_ttl_ms=*/0, /*fence_bump=*/1000,
                          /*compact_threshold=*/4);
  cluster.start_member(0);
  cluster.start_member(1);
  const int p = cluster.wait_for_primary(10s);
  ASSERT_GE(p, 0);

  api::client client(cluster.endpoints_csv());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 6; ++i) {
    auto got = client.try_acquire("locks/compacted-" + std::to_string(i));
    ASSERT_TRUE(got.won());
    ASSERT_EQ(got.lease.release(), api::lease_status::ok);
  }

  // Wait until the primary has actually compacted, so the late member
  // exercises the snapshot path rather than a long append replay.
  const auto deadline = std::chrono::steady_clock::now() + 15s;
  auto* primary_node = cluster.nodes[static_cast<std::size_t>(p)].get();
  while (primary_node->counters().compactions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_GE(primary_node->counters().compactions, 1u);

  cluster.start_member(2);
  auto* late = cluster.nodes[2].get();
  while ((late->counters().snapshots_installed == 0 ||
          late->commit_index() < primary_node->commit_index()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_GE(late->counters().snapshots_installed, 1u);
  EXPECT_GE(primary_node->counters().snapshots_sent, 1u);
  EXPECT_EQ(late->commit_index(), primary_node->commit_index());

  // Byte-comparable replicas: the late member's registry agrees with
  // the primary's on every replayed key.
  for (int i = 0; i < 6; ++i) {
    const std::string key = "locks/compacted-" + std::to_string(i);
    const auto on_primary =
        cluster.services[static_cast<std::size_t>(p)]->registry().inspect(key);
    const auto on_late = cluster.services[2]->registry().inspect(key);
    ASSERT_TRUE(on_primary.has_value());
    ASSERT_TRUE(on_late.has_value());
    EXPECT_EQ(on_late->entry.epoch, on_primary->entry.epoch);
    EXPECT_EQ(on_late->leader, on_primary->leader);
  }
}

}  // namespace
}  // namespace elect
