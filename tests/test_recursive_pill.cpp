// Recursive plain-PoisonPill election (§3.1 extension) property tests.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "exp/harness.hpp"

namespace elect {
namespace {

using exp::algo;
using exp::run_trial;
using exp::trial_config;
using exp::trial_result;

class RecursivePillSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(RecursivePillSweep, ExactlyOneWinnerWhenAllReturn) {
  const auto [n, adversary] = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    trial_config config;
    config.kind = algo::recursive_pill;
    config.n = n;
    config.seed = seed;
    config.adversary = adversary;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed) << "n=" << n << " adv=" << adversary
                                  << " seed=" << seed;
    EXPECT_EQ(result.winners, 1)
        << "n=" << n << " adv=" << adversary << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RecursivePillSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16, 33),
                       ::testing::Values("uniform", "round-robin",
                                         "sequential")),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

TEST(RecursivePill, AtMostOneWinnerUnderCrashes) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    trial_config config;
    config.kind = algo::recursive_pill;
    config.n = 9;
    config.seed = seed;
    config.crashes = max_crash_faults(9);
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed) << "seed " << seed;
    EXPECT_LE(result.winners, 1);
  }
}

TEST(RecursivePill, RoundsStaySmall) {
  // O(log log n): at n=64 the expected round count is tiny.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trial_config config;
    config.kind = algo::recursive_pill;
    config.n = 64;
    config.seed = seed;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    for (const std::int64_t r : result.rounds) EXPECT_LE(r, 12);
  }
}

TEST(RecursivePill, SoloParticipantWins) {
  trial_config config;
  config.kind = algo::recursive_pill;
  config.n = 8;
  config.participants = 1;
  config.seed = 4;
  const trial_result result = run_trial(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.winners, 1);
}

}  // namespace
}  // namespace elect
