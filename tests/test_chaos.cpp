// elect::chaos tests: the schedule's determinism and trace round-trip,
// the checker's teeth (hand-crafted histories that violate each rule
// must convict, and a clean history must pass), the restore-fence
// crash-gap story end to end against the real registry (fence_bump=1
// IS the plantable bug; 2^20 is the fix), and the nemesis proxy
// relaying, duplicating, and taint-severing real wire traffic.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos/checker.hpp"
#include "chaos/history.hpp"
#include "chaos/nemesis.hpp"
#include "chaos/schedule.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------
// Schedule: determinism + trace round-trip.

TEST(ChaosSchedule, PlanIsAPureFunctionOfTheSeed) {
  const chaos::plan a = chaos::make_plan(42, 800, /*smoke=*/false);
  const chaos::plan b = chaos::make_plan(42, 800, /*smoke=*/false);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  EXPECT_EQ(chaos::to_trace(a), chaos::to_trace(b));

  const chaos::plan c = chaos::make_plan(43, 800, /*smoke=*/false);
  EXPECT_NE(chaos::to_trace(a), chaos::to_trace(c));

  // Every full plan carries at least one kill and one partition —
  // the acceptance faults are never schedulable away.
  bool kill = false, partition = false;
  for (const chaos::phase& p : a.phases) {
    kill = kill || p.kill_server;
    partition = partition || p.policy.partition_groups != 0;
  }
  EXPECT_TRUE(kill);
  EXPECT_TRUE(partition);
}

TEST(ChaosSchedule, TraceRoundTripsExactly) {
  const chaos::plan plan = chaos::make_plan(7, 400, /*smoke=*/true);
  const std::string trace = chaos::to_trace(plan);
  const auto parsed = chaos::parse_trace(trace);
  ASSERT_TRUE(parsed.has_value());
  // Re-serializing the parse must reproduce the trace byte-for-byte:
  // that is what makes --replay exact.
  EXPECT_EQ(chaos::to_trace(*parsed), trace);
  EXPECT_EQ(parsed->seed, 7u);
}

TEST(ChaosSchedule, ParseRejectsForeignDialects) {
  EXPECT_FALSE(chaos::parse_trace("").has_value());
  EXPECT_FALSE(chaos::parse_trace("elect_chaos trace v2\nseed 1\n")
                   .has_value());
  EXPECT_FALSE(chaos::parse_trace("elect_chaos trace v1\nseed 1\n")
                   .has_value());  // no phases
  EXPECT_FALSE(
      chaos::parse_trace(
          "elect_chaos trace v1\nseed 1\nphase name=x ms=10 kill=0 bogus=1\n")
          .has_value());
}

// ---------------------------------------------------------------------
// Checker self-tests: every rule must convict its hand-crafted
// violation, and the clean history must pass.

chaos::record grant(int worker, const std::string& key, std::uint64_t epoch,
                    std::uint64_t start_us, std::uint64_t end_us) {
  chaos::record r;
  r.worker = worker;
  r.op = chaos::op_kind::acquire;
  r.result = chaos::outcome::ok;
  r.key = key;
  r.epoch = epoch;
  r.start_us = start_us;
  r.end_us = end_us;
  return r;
}

chaos::record lease_op(int worker, chaos::op_kind op, chaos::outcome result,
                       const std::string& key, std::uint64_t epoch,
                       std::uint64_t at_us) {
  chaos::record r;
  r.worker = worker;
  r.op = op;
  r.result = result;
  r.key = key;
  r.epoch = epoch;
  r.start_us = at_us;
  r.end_us = at_us + 10;
  return r;
}

chaos::record elected_event(int worker, const std::string& key,
                            std::uint64_t epoch, std::int64_t session,
                            std::uint64_t at_us) {
  chaos::record r;
  r.worker = worker;
  r.op = chaos::op_kind::watch_event;
  r.result = chaos::outcome::ok;
  r.key = key;
  r.epoch = epoch;
  r.transition = 0;  // svc::transition::elected
  r.session = session;
  r.start_us = r.end_us = at_us;
  return r;
}

bool convicts(const chaos::report& report, const std::string& rule) {
  for (const chaos::violation& v : report.violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

TEST(ChaosChecker, CleanHistoryPasses) {
  std::vector<chaos::record> records;
  records.push_back(grant(0, "k", 0, 100, 200));
  records.push_back(lease_op(0, chaos::op_kind::renew, chaos::outcome::ok,
                             "k", 0, 300));
  records.push_back(lease_op(0, chaos::op_kind::release, chaos::outcome::ok,
                             "k", 0, 400));
  records.push_back(grant(1, "k", 1, 500, 600));
  // The zombie comes back and is fenced — that is the contract working.
  records.push_back(lease_op(0, chaos::op_kind::release,
                             chaos::outcome::stale_epoch, "k", 0, 700));
  records.push_back(elected_event(2, "k", 0, 10, 210));
  records.push_back(elected_event(2, "k", 0, 10, 211));  // nemesis dup
  records.push_back(elected_event(2, "k", 1, 11, 610));
  const chaos::report report = chaos::check(records, {});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.grants, 2u);
}

TEST(ChaosChecker, DoubleLeaderConvictsR1) {
  // Two different workers both won (k, 5): split brain.
  std::vector<chaos::record> records;
  records.push_back(grant(0, "k", 5, 100, 200));
  records.push_back(grant(1, "k", 5, 150, 250));
  const chaos::report report = chaos::check(records, {});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(convicts(report, "R1")) << report.to_string();
}

TEST(ChaosChecker, WatchEventsNamingTwoSessionsConvictR1) {
  std::vector<chaos::record> records;
  records.push_back(elected_event(0, "k", 5, 10, 100));
  records.push_back(elected_event(1, "k", 5, 11, 110));
  const chaos::report report = chaos::check(records, {});
  EXPECT_TRUE(convicts(report, "R1")) << report.to_string();
}

TEST(ChaosChecker, JournalEpochRegressionAcrossIncarnationsConvictsR2) {
  // Incarnation 0's journal granted (k, 7); after the crash-restart,
  // incarnation 1 granted (k, 3) — the restore fence failed to clear
  // history it provably knew about.
  chaos::incarnation_evidence inc0;
  inc0.grants.push_back({"k", 6, 1});
  inc0.grants.push_back({"k", 7, 2});
  chaos::incarnation_evidence inc1;
  inc1.grants.push_back({"k", 3, 3});
  const chaos::report report = chaos::check({}, {inc0, inc1});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(convicts(report, "R2")) << report.to_string();

  // Same journals with a clearing first grant: fine.
  chaos::incarnation_evidence fixed;
  fixed.grants.push_back({"k", 8, 3});
  EXPECT_TRUE(chaos::check({}, {inc0, fixed}).ok());
}

TEST(ChaosChecker, RealTimeEpochRegressionConvictsR3) {
  // Worker 0's grant of epoch 9 completed at t=200; worker 1 then won
  // epoch 4 in a grant that *started* at t=300. No journal needed —
  // the client histories alone prove the epoch went backward (the
  // crash-gap double grant looks exactly like this).
  std::vector<chaos::record> records;
  records.push_back(grant(0, "k", 9, 100, 200));
  records.push_back(grant(1, "k", 4, 300, 400));
  const chaos::report report = chaos::check(records, {});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(convicts(report, "R3")) << report.to_string();

  // Overlapping grants of different epochs are NOT an R3 violation
  // (the later-started one may have linearized first).
  std::vector<chaos::record> overlap;
  overlap.push_back(grant(0, "k", 9, 100, 500));
  overlap.push_back(grant(1, "k", 4, 300, 400));
  EXPECT_FALSE(convicts(chaos::check(overlap, {}), "R3"));
}

TEST(ChaosChecker, UnfencedZombieReleaseConvictsR4) {
  // Worker 0 released (k, 3), then a later release of the SAME token
  // succeeded again — the fence let a zombie through.
  std::vector<chaos::record> records;
  records.push_back(grant(0, "k", 3, 100, 150));
  records.push_back(lease_op(0, chaos::op_kind::release, chaos::outcome::ok,
                             "k", 3, 200));
  records.push_back(lease_op(0, chaos::op_kind::release, chaos::outcome::ok,
                             "k", 3, 300));
  const chaos::report report = chaos::check(records, {});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(convicts(report, "R4")) << report.to_string();

  // A renew that succeeds after the worker already saw stale_epoch on
  // the token is the post-expiry zombie variant.
  std::vector<chaos::record> zombie;
  zombie.push_back(grant(0, "k", 3, 100, 150));
  zombie.push_back(lease_op(0, chaos::op_kind::renew,
                            chaos::outcome::stale_epoch, "k", 3, 200));
  zombie.push_back(lease_op(0, chaos::op_kind::renew, chaos::outcome::ok,
                            "k", 3, 300));
  EXPECT_TRUE(convicts(chaos::check(zombie, {}), "R4"));
}

TEST(ChaosChecker, OutOfOrderWatchEventsConvictR5) {
  std::vector<chaos::record> records;
  records.push_back(elected_event(0, "k", 7, 10, 100));
  records.push_back(elected_event(0, "k", 5, 11, 200));  // went backward
  const chaos::report report = chaos::check(records, {});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(convicts(report, "R5")) << report.to_string();

  // Consecutive duplicates of the same epoch are nemesis duplication,
  // not a violation; and different workers' streams are independent.
  std::vector<chaos::record> fine;
  fine.push_back(elected_event(0, "k", 7, 10, 100));
  fine.push_back(elected_event(0, "k", 7, 10, 150));
  fine.push_back(elected_event(1, "k", 5, 9, 200));
  fine.push_back(elected_event(1, "k", 7, 10, 300));
  EXPECT_FALSE(convicts(chaos::check(fine, {}), "R5"));
}

TEST(ChaosChecker, ParseJournalReadsElectedLinesAndSkipsNoise) {
  const std::string jsonl =
      "{\"seq\":1,\"ts_ms\":5,\"kind\":\"elected\",\"key\":\"a\","
      "\"epoch\":3,\"holder\":7,\"cause\":\"\"}\n"
      "{\"seq\":2,\"ts_ms\":6,\"kind\":\"released\",\"key\":\"a\","
      "\"epoch\":3,\"holder\":7,\"cause\":\"\"}\n"
      "{\"seq\":3,\"ts_ms\":7,\"kind\":\"elected\",\"key\":\"b\","
      "\"epoch\":0,\"holder\":2,\"cause\":\"\"}\n"
      "{\"seq\":4,\"ts_ms\":8,\"kind\":\"elected\",\"key\":\"c\",\"epo";
  const chaos::incarnation_evidence evidence = chaos::parse_journal(jsonl);
  ASSERT_EQ(evidence.grants.size(), 2u);
  EXPECT_EQ(evidence.grants[0].key, "a");
  EXPECT_EQ(evidence.grants[0].epoch, 3u);
  EXPECT_EQ(evidence.grants[0].holder, 7);
  EXPECT_EQ(evidence.grants[1].key, "b");
}

// ---------------------------------------------------------------------
// The restore fence vs the crash gap, against the real registry. This
// is the deterministic version of `elect_chaos --plant-fence-bug`.

TEST(ChaosChecker, CrashGapDoubleGrantIsCaughtAndBigFenceBumpPreventsIt) {
  for (const bool planted : {true, false}) {
    svc::service_config config{.nodes = 4, .shards = 2};
    config.record_commands = true;
    svc::service before(std::move(config));
    auto session = before.connect();

    std::vector<chaos::record> records;
    std::uint64_t t = 100;
    // Pre-crash churn: epochs 0..4 granted; the snapshot is taken
    // after epoch 2 — epochs 3 and 4 live only in the crash gap.
    std::vector<std::uint8_t> snapshot;
    std::uint64_t gap_epoch = 0;
    for (int i = 0; i < 5; ++i) {
      const auto won = session.try_acquire("gap/key");
      ASSERT_TRUE(won.won);
      records.push_back(grant(0, "gap/key", won.epoch, t, t + 10));
      t += 100;
      ASSERT_EQ(session.release("gap/key", won.epoch),
                svc::lease_status::ok);
      if (i == 2) snapshot = before.registry().snapshot(false);
      gap_epoch = won.epoch;
    }
    ASSERT_FALSE(snapshot.empty());
    ASSERT_EQ(gap_epoch, 4u);

    // Crash. Restart from the snapshot — which ends at epoch 2 and
    // knows nothing of 3 or 4.
    svc::service after({.nodes = 4, .shards = 2});
    ASSERT_FALSE(after.registry()
                     .restore(snapshot, /*fence_restored=*/true,
                              planted ? 1 : (1ull << 20))
                     .has_value());
    auto session2 = after.connect();
    const auto regrant = session2.try_acquire("gap/key");
    ASSERT_TRUE(regrant.won);
    records.push_back(grant(1, "gap/key", regrant.epoch, t, t + 10));

    const chaos::report report = chaos::check(records, {});
    if (planted) {
      // fence_bump=1 lands the restart at epoch 3 < 4: a pre-crash
      // client already won that epoch, and the checker must say so.
      EXPECT_LE(regrant.epoch, gap_epoch);
      ASSERT_FALSE(report.ok()) << "planted fence bug not caught";
      EXPECT_TRUE(convicts(report, "R3")) << report.to_string();
    } else {
      EXPECT_GT(regrant.epoch, gap_epoch);
      EXPECT_TRUE(report.ok()) << report.to_string();
    }
  }
}

// ---------------------------------------------------------------------
// Nemesis over a real server.

struct proxied_stack {
  proxied_stack()
      : service({.nodes = 4, .shards = 2}), server(service, {}) {
    chaos::nemesis_config config;
    config.upstream_port = server.port();
    config.seed = 99;
    proxy = std::make_unique<chaos::nemesis>(config);
  }

  ~proxied_stack() {
    proxy->stop();
    server.stop();
  }

  [[nodiscard]] std::unique_ptr<net::client> connect() const {
    return std::make_unique<net::client>("127.0.0.1", proxy->port());
  }

  svc::service service;
  net::server server;
  std::unique_ptr<chaos::nemesis> proxy;
};

TEST(ChaosNemesis, QuietPolicyRelaysTheFullSessionApi) {
  proxied_stack stack;
  ASSERT_TRUE(stack.proxy->running());
  const auto client = stack.connect();
  ASSERT_TRUE(client->connected());

  const auto won = client->try_acquire("via/proxy");
  ASSERT_TRUE(won.won);
  EXPECT_EQ(client->renew("via/proxy", won.epoch), svc::lease_status::ok);
  EXPECT_EQ(client->release("via/proxy", won.epoch), svc::lease_status::ok);
  // 4 round trips (hello + 3 ops) = 8 frames. The counter is bumped by
  // the loop thread just after the forwarding write, so the client can
  // observe the last response a hair before the bump — poll briefly.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (stack.proxy->stats().frames_forwarded < 8 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(stack.proxy->stats().frames_forwarded, 8u);
}

TEST(ChaosNemesis, DuplicatedResponsesAreToleratedByTheClient) {
  proxied_stack stack;
  // Connect before arming the fault: a duplicated *hello* is a wire
  // protocol violation the server answers by killing the connection
  // (chaos workers ride that out via their reconnect loop). Past the
  // handshake, duplicates of every frame must be harmless.
  const auto client = stack.connect();
  ASSERT_TRUE(client->connected());
  chaos::fault_policy dup;
  dup.duplicate = 1.0;
  stack.proxy->set_policy(dup);
  // A duplicated c2s request earns two answers under one id (try_acquire:
  // won, then lost) and the caller may observe either — so assert
  // *liveness* (every call returns, the connection survives), not
  // specific verdicts. Distinct keys keep a lost-overwrite from wedging
  // later rounds behind a lease the client doesn't know it holds.
  for (int i = 0; i < 16; ++i) {
    const std::string key = "dup/key-" + std::to_string(i);
    const auto won = client->try_acquire(key);
    if (!won.won) continue;
    const auto released = client->release(key, won.epoch);
    EXPECT_TRUE(released == svc::lease_status::ok ||
                released == svc::lease_status::stale_epoch ||
                released == svc::lease_status::not_leader)
        << static_cast<int>(released);
  }
  EXPECT_TRUE(client->connected());
  EXPECT_GT(stack.proxy->stats().frames_duplicated, 0u);
}

TEST(ChaosNemesis, DropTaintsAndThePhaseBoundarySeversTheWedgedPair) {
  proxied_stack stack;
  const auto client = stack.connect();
  ASSERT_TRUE(client->connected());
  ASSERT_TRUE(client->try_acquire("taint/key").won);

  // Black hole: every frame dropped. The release below would wedge
  // forever on a pure drop — the phase boundary must sever it free.
  chaos::fault_policy black_hole;
  black_hole.drop = 1.0;
  stack.proxy->set_policy(black_hole);

  std::thread releaser([&] {
    // Severed mid-call: the verdict is connection_lost, not a fencing
    // answer — the server may still count us as holder until the TTL.
    EXPECT_EQ(client->release("taint/key", 0),
              svc::lease_status::connection_lost);
  });
  // Wait until the doomed frame has actually been dropped (tainting
  // the pair), then end the phase: tainted pairs are severed.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (stack.proxy->stats().frames_dropped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GE(stack.proxy->stats().frames_dropped, 1u);
  stack.proxy->set_policy({});
  releaser.join();
  EXPECT_EQ(client->reason(), net::close_reason::severed);
  EXPECT_GE(stack.proxy->stats().taint_severs, 1u);
  EXPECT_GE(stack.proxy->stats().frames_dropped, 1u);
}

TEST(ChaosNemesis, SeverAllCutsEveryPair) {
  proxied_stack stack;
  const auto a = stack.connect();
  const auto b = stack.connect();
  ASSERT_TRUE(a->connected());
  ASSERT_TRUE(b->connected());
  stack.proxy->sever_all();
  // The reader threads observe the close promptly; calls then degrade.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while ((a->connected() || b->connected()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_FALSE(a->connected());
  EXPECT_FALSE(b->connected());
  EXPECT_EQ(a->reason(), net::close_reason::severed);
  EXPECT_EQ(stack.proxy->stats().pairs_severed, 2u);
}

}  // namespace
}  // namespace elect
