// latency_histogram unit tests: bucket-edge placement (0, 1, powers of
// two, overflow), the consistent tail estimate, quantile monotonicity,
// and the lease counters' JSON round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "svc/metrics.hpp"

namespace elect {
namespace {

using svc::latency_histogram;

constexpr int top = latency_histogram::bucket_count - 1;  // overflow bucket

TEST(LatencyHistogram, EmptyQuantileIsZero) {
  latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(LatencyHistogram, BucketZeroHoldsZeroAndOne) {
  // Bucket 0 covers [0, 2): samples 0 and 1 share it; its midpoint is 1.
  latency_histogram h;
  h.add(0);
  h.add(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.quantile(0.0), 1.0);
  EXPECT_EQ(h.quantile(1.0), 1.0);
}

TEST(LatencyHistogram, PowerOfTwoBoundariesLandInTheirBucket) {
  // 2^b is the *low* edge of bucket b; 2^b - 1 is the top of bucket b-1.
  for (int b = 1; b < top; ++b) {
    latency_histogram below;
    below.add((1ULL << b) - 1);
    EXPECT_EQ(below.quantile(0.5), latency_histogram::bucket_midpoint(b - 1))
        << "sample 2^" << b << " - 1";

    latency_histogram at;
    at.add(1ULL << b);
    EXPECT_EQ(at.quantile(0.5), latency_histogram::bucket_midpoint(b))
        << "sample 2^" << b;
  }
}

TEST(LatencyHistogram, MidpointsAreGeometricBucketCenters) {
  // Bucket b covers [2^b, 2^(b+1)); spot-check the arithmetic midpoints.
  EXPECT_EQ(latency_histogram::bucket_midpoint(0), 1.0);        // [0, 2)
  EXPECT_EQ(latency_histogram::bucket_midpoint(1), 3.0);        // [2, 4)
  EXPECT_EQ(latency_histogram::bucket_midpoint(2), 6.0);        // [4, 8)
  EXPECT_EQ(latency_histogram::bucket_midpoint(10), 1536.0);    // [1024, 2048)
}

TEST(LatencyHistogram, OverflowTailIsConsistentWithBody) {
  // Everything at or above 2^47 collapses into the overflow bucket. The
  // old code returned the bucket's *lower bound* on one path while every
  // other bucket reported its midpoint; the tail estimate must now be
  // the same midpoint everywhere and never sit below the lower bound of
  // the bucket's range.
  const double tail_midpoint = latency_histogram::bucket_midpoint(top);
  EXPECT_EQ(tail_midpoint,
            (static_cast<double>(1ULL << top) +
             static_cast<double>(2ULL << top)) /
                2.0);

  latency_histogram h;
  h.add(1ULL << top);                  // low edge of the overflow bucket
  h.add((1ULL << top) + 12345);        // inside
  h.add(~0ULL);                        // far beyond the nominal range
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.quantile(0.0), tail_midpoint);
  EXPECT_EQ(h.quantile(0.5), tail_midpoint);
  EXPECT_EQ(h.quantile(1.0), tail_midpoint);
  EXPECT_GT(h.quantile(1.0), static_cast<double>(1ULL << top));
}

TEST(LatencyHistogram, TailDoesNotDipBelowPrecedingBucket) {
  // Regression shape for the old bug: with samples in bucket top-1 and
  // the overflow bucket, a p99 landing in the overflow bucket must be >=
  // the p50 landing below it (the lower-bound tail could tie or invert).
  latency_histogram h;
  for (int i = 0; i < 98; ++i) h.add(1ULL << (top - 1));
  h.add(~0ULL);
  h.add(~0ULL);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_EQ(p50, latency_histogram::bucket_midpoint(top - 1));
  EXPECT_EQ(p99, latency_histogram::bucket_midpoint(top));
  EXPECT_GT(p99, p50);
}

TEST(LatencyHistogram, QuantileIsMonotoneInQ) {
  latency_histogram h;
  for (std::uint64_t v : {0ULL, 1ULL, 5ULL, 100ULL, 4096ULL, 1ULL << 20,
                          1ULL << 40, ~0ULL}) {
    h.add(v);
  }
  double previous = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = h.quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(ServiceReport, LeaseCountersRoundTripThroughJson) {
  svc::service_metrics metrics(2);
  metrics.record_acquire(0, election::strategy_kind::full, /*won=*/true,
                         /*latency_ns=*/1000);
  metrics.record_acquire(1, election::strategy_kind::adaptive, /*won=*/true,
                         /*latency_ns=*/500);
  metrics.record_release(0);
  metrics.record_expiration(1);
  metrics.record_renewal(0);
  metrics.record_renewal(0);
  metrics.record_stale_fence(1);
  metrics.record_rejected_acquire();
  metrics.record_fast_path_hit();
  metrics.record_fast_path_conflict();
  metrics.record_fast_path_fallback();
  metrics.record_short_circuit_loss();

  const svc::service_report report = metrics.snapshot();
  EXPECT_EQ(report.expirations, 1u);
  EXPECT_EQ(report.renewals, 2u);
  EXPECT_EQ(report.stale_fences, 1u);
  EXPECT_EQ(report.rejected_acquires, 1u);
  const auto full_idx =
      static_cast<std::size_t>(election::strategy_kind::full);
  const auto adaptive_idx =
      static_cast<std::size_t>(election::strategy_kind::adaptive);
  EXPECT_EQ(report.strategies[full_idx].acquires, 1u);
  EXPECT_EQ(report.strategies[full_idx].wins, 1u);
  EXPECT_EQ(report.strategies[adaptive_idx].acquires, 1u);
  EXPECT_EQ(report.fast_path.hits, 1u);
  EXPECT_EQ(report.fast_path.conflicts, 1u);
  EXPECT_EQ(report.fast_path.fallbacks, 1u);
  EXPECT_NEAR(report.fast_path.hit_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(report.short_circuit_losses, 1u);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"expirations\":1"), std::string::npos);
  EXPECT_NE(json.find("\"renewals\":2"), std::string::npos);
  EXPECT_NE(json.find("\"stale_fences\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_acquires\":1"), std::string::npos);
  EXPECT_NE(json.find("\"participated_entries\":"), std::string::npos);
  EXPECT_NE(json.find("\"strategies\":{\"full\":{\"acquires\":1,\"wins\":1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"fast_path\":{\"hits\":1,\"conflicts\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"short_circuit_losses\":1"), std::string::npos);
}

}  // namespace
}  // namespace elect
