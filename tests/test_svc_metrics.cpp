// latency_histogram unit tests: bucket-edge placement (0, 1, powers of
// two, overflow), the consistent tail estimate, quantile monotonicity,
// the lease counters' JSON round-trip — and a real JSON parse of the
// whole report, asserting every documented key survives (CI uploads
// these reports as artifacts; silent schema drift breaks every
// downstream diff without failing anything, so this test fails it).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "svc/metrics.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using svc::latency_histogram;

constexpr int top = latency_histogram::bucket_count - 1;  // overflow bucket

TEST(LatencyHistogram, EmptyQuantileIsZero) {
  latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(LatencyHistogram, BucketZeroHoldsZeroAndOne) {
  // Bucket 0 covers [0, 2): samples 0 and 1 share it; its midpoint is 1.
  latency_histogram h;
  h.add(0);
  h.add(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.quantile(0.0), 1.0);
  EXPECT_EQ(h.quantile(1.0), 1.0);
}

TEST(LatencyHistogram, PowerOfTwoBoundariesLandInTheirBucket) {
  // 2^b is the *low* edge of bucket b; 2^b - 1 is the top of bucket b-1.
  for (int b = 1; b < top; ++b) {
    latency_histogram below;
    below.add((1ULL << b) - 1);
    EXPECT_EQ(below.quantile(0.5), latency_histogram::bucket_midpoint(b - 1))
        << "sample 2^" << b << " - 1";

    latency_histogram at;
    at.add(1ULL << b);
    EXPECT_EQ(at.quantile(0.5), latency_histogram::bucket_midpoint(b))
        << "sample 2^" << b;
  }
}

TEST(LatencyHistogram, MidpointsAreGeometricBucketCenters) {
  // Bucket b covers [2^b, 2^(b+1)); spot-check the arithmetic midpoints.
  EXPECT_EQ(latency_histogram::bucket_midpoint(0), 1.0);        // [0, 2)
  EXPECT_EQ(latency_histogram::bucket_midpoint(1), 3.0);        // [2, 4)
  EXPECT_EQ(latency_histogram::bucket_midpoint(2), 6.0);        // [4, 8)
  EXPECT_EQ(latency_histogram::bucket_midpoint(10), 1536.0);    // [1024, 2048)
}

TEST(LatencyHistogram, OverflowTailIsConsistentWithBody) {
  // Everything at or above 2^47 collapses into the overflow bucket. The
  // old code returned the bucket's *lower bound* on one path while every
  // other bucket reported its midpoint; the tail estimate must now be
  // the same midpoint everywhere and never sit below the lower bound of
  // the bucket's range.
  const double tail_midpoint = latency_histogram::bucket_midpoint(top);
  EXPECT_EQ(tail_midpoint,
            (static_cast<double>(1ULL << top) +
             static_cast<double>(2ULL << top)) /
                2.0);

  latency_histogram h;
  h.add(1ULL << top);                  // low edge of the overflow bucket
  h.add((1ULL << top) + 12345);        // inside
  h.add(~0ULL);                        // far beyond the nominal range
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.quantile(0.0), tail_midpoint);
  EXPECT_EQ(h.quantile(0.5), tail_midpoint);
  EXPECT_EQ(h.quantile(1.0), tail_midpoint);
  EXPECT_GT(h.quantile(1.0), static_cast<double>(1ULL << top));
}

TEST(LatencyHistogram, TailDoesNotDipBelowPrecedingBucket) {
  // Regression shape for the old bug: with samples in bucket top-1 and
  // the overflow bucket, a p99 landing in the overflow bucket must be >=
  // the p50 landing below it (the lower-bound tail could tie or invert).
  latency_histogram h;
  for (int i = 0; i < 98; ++i) h.add(1ULL << (top - 1));
  h.add(~0ULL);
  h.add(~0ULL);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_EQ(p50, latency_histogram::bucket_midpoint(top - 1));
  EXPECT_EQ(p99, latency_histogram::bucket_midpoint(top));
  EXPECT_GT(p99, p50);
}

TEST(LatencyHistogram, QuantileIsMonotoneInQ) {
  latency_histogram h;
  for (std::uint64_t v : {0ULL, 1ULL, 5ULL, 100ULL, 4096ULL, 1ULL << 20,
                          1ULL << 40, ~0ULL}) {
    h.add(v);
  }
  double previous = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = h.quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(ServiceReport, LeaseCountersRoundTripThroughJson) {
  svc::service_metrics metrics(2);
  metrics.record_acquire(0, election::strategy_kind::full, /*won=*/true,
                         /*latency_ns=*/1000);
  metrics.record_acquire(1, election::strategy_kind::adaptive, /*won=*/true,
                         /*latency_ns=*/500);
  metrics.record_release(0);
  metrics.record_expiration(1);
  metrics.record_renewal(0);
  metrics.record_renewal(0);
  metrics.record_stale_fence(1);
  metrics.record_rejected_acquire();
  metrics.record_fast_path_hit();
  metrics.record_fast_path_conflict();
  metrics.record_fast_path_fallback();
  metrics.record_short_circuit_loss();

  const svc::service_report report = metrics.snapshot();
  EXPECT_EQ(report.expirations, 1u);
  EXPECT_EQ(report.renewals, 2u);
  EXPECT_EQ(report.stale_fences, 1u);
  EXPECT_EQ(report.rejected_acquires, 1u);
  const auto full_idx =
      static_cast<std::size_t>(election::strategy_kind::full);
  const auto adaptive_idx =
      static_cast<std::size_t>(election::strategy_kind::adaptive);
  EXPECT_EQ(report.strategies[full_idx].acquires, 1u);
  EXPECT_EQ(report.strategies[full_idx].wins, 1u);
  EXPECT_EQ(report.strategies[adaptive_idx].acquires, 1u);
  EXPECT_EQ(report.fast_path.hits, 1u);
  EXPECT_EQ(report.fast_path.conflicts, 1u);
  EXPECT_EQ(report.fast_path.fallbacks, 1u);
  EXPECT_NEAR(report.fast_path.hit_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(report.short_circuit_losses, 1u);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"expirations\":1"), std::string::npos);
  EXPECT_NE(json.find("\"renewals\":2"), std::string::npos);
  EXPECT_NE(json.find("\"stale_fences\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_acquires\":1"), std::string::npos);
  EXPECT_NE(json.find("\"participated_entries\":"), std::string::npos);
  EXPECT_NE(json.find("\"strategies\":{\"full\":{\"acquires\":1,\"wins\":1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"fast_path\":{\"hits\":1,\"conflicts\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"short_circuit_losses\":1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Schema round-trip: a minimal recursive-descent JSON parser (numbers,
// strings, bools, null, arrays, objects — everything the report emits),
// run over a real service's report. No third-party dependency: the
// point is to parse what we actually wrote, not to validate JSON in
// general, so unescaping is limited to what json_escape produces.

struct json_value;
using json_object = std::map<std::string, std::shared_ptr<json_value>>;
using json_array = std::vector<std::shared_ptr<json_value>>;

struct json_value {
  std::variant<std::nullptr_t, bool, double, std::string, json_array,
               json_object>
      v;

  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const json_object& object() const {
    return std::get<json_object>(v);
  }
  [[nodiscard]] const json_array& array() const {
    return std::get<json_array>(v);
  }
};

class json_parser {
 public:
  explicit json_parser(const std::string& text) : text_(text) {}

  /// Parse one complete document; empty on any malformation (including
  /// trailing bytes — the report must be exactly one object).
  [[nodiscard]] std::shared_ptr<json_value> parse() {
    auto value = parse_value();
    skip_ws();
    if (!ok_ || at_ != text_.size()) return nullptr;
    return value;
  }

 private:
  void skip_ws() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    ok_ = false;
    return false;
  }

  bool literal(const std::string& word) {
    if (text_.compare(at_, word.size(), word) == 0) {
      at_ += word.size();
      return true;
    }
    ok_ = false;
    return false;
  }

  std::shared_ptr<json_value> parse_value() {
    skip_ws();
    if (at_ >= text_.size()) {
      ok_ = false;
      return nullptr;
    }
    const char c = text_[at_];
    auto value = std::make_shared<json_value>();
    switch (c) {
      case '{': {
        json_object object;
        ++at_;
        skip_ws();
        if (at_ < text_.size() && text_[at_] == '}') {
          ++at_;
        } else {
          do {
            std::string key;
            if (!parse_string(key)) return nullptr;
            if (!consume(':')) return nullptr;
            auto member = parse_value();
            if (!ok_) return nullptr;
            object.emplace(std::move(key), std::move(member));
            skip_ws();
          } while (at_ < text_.size() && text_[at_] == ',' && ++at_);
          if (!consume('}')) return nullptr;
        }
        value->v = std::move(object);
        return value;
      }
      case '[': {
        json_array array;
        ++at_;
        skip_ws();
        if (at_ < text_.size() && text_[at_] == ']') {
          ++at_;
        } else {
          do {
            auto element = parse_value();
            if (!ok_) return nullptr;
            array.push_back(std::move(element));
            skip_ws();
          } while (at_ < text_.size() && text_[at_] == ',' && ++at_);
          if (!consume(']')) return nullptr;
        }
        value->v = std::move(array);
        return value;
      }
      case '"': {
        std::string s;
        if (!parse_string(s)) return nullptr;
        value->v = std::move(s);
        return value;
      }
      case 't':
        if (!literal("true")) return nullptr;
        value->v = true;
        return value;
      case 'f':
        if (!literal("false")) return nullptr;
        value->v = false;
        return value;
      case 'n':
        if (!literal("null")) return nullptr;
        value->v = nullptr;
        return value;
      default: {
        const std::size_t start = at_;
        while (at_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[at_])) ||
                text_[at_] == '-' || text_[at_] == '+' || text_[at_] == '.' ||
                text_[at_] == 'e' || text_[at_] == 'E')) {
          ++at_;
        }
        if (at_ == start) {
          ok_ = false;
          return nullptr;
        }
        value->v = std::stod(text_.substr(start, at_ - start));
        return value;
      }
    }
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (!consume('"')) return false;
    out.clear();
    while (at_ < text_.size() && text_[at_] != '"') {
      char c = text_[at_++];
      if (c == '\\' && at_ < text_.size()) {
        const char escaped = text_[at_++];
        switch (escaped) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: c = escaped; break;  // \" \\ \/ — and json_escape
        }                               // emits nothing more exotic
      }
      out.push_back(c);
    }
    return consume('"');
  }

  const std::string& text_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

const json_value& member(const json_object& object, const std::string& key) {
  const auto it = object.find(key);
  EXPECT_NE(it, object.end()) << "missing documented key: " << key;
  static const json_value missing{};
  return it == object.end() ? missing : *it->second;
}

TEST(ServiceReportSchema, DocumentedKeysSurviveAJsonRoundTrip) {
  // A real service, real traffic: wins, losses, releases, fences, and a
  // renewal all land in the report before it is serialized.
  svc::service service(svc::service_config{.nodes = 2,
                                           .shards = 3,
                                           .seed = 21,
                                           .lease_ttl_ms = 60'000,
                                           .sweep_interval_ms = 30'000});
  auto holder = service.connect();
  auto rival = service.connect();
  const auto won = holder.try_acquire("schema/a");
  ASSERT_TRUE(won.won);
  EXPECT_FALSE(rival.try_acquire("schema/a").won);
  EXPECT_EQ(holder.renew("schema/a", won.epoch), svc::lease_status::ok);
  EXPECT_EQ(rival.release("schema/a"), svc::lease_status::not_leader);
  EXPECT_EQ(holder.release("schema/a", won.epoch), svc::lease_status::ok);

  svc::service_report report = service.report();
  // The net extension rides the same report; exercise it too.
  report.net_json = "{\"frames_in\":7,\"disconnect_reclaims\":0}";
  const std::string json = report.to_json();

  const auto document = json_parser(json).parse();
  ASSERT_NE(document, nullptr) << "report is not valid JSON:\n" << json;
  const json_object& root = document->object();

  // Scalar counters.
  for (const std::string key :
       {"acquires", "wins", "releases", "expirations", "renewals",
        "stale_fences", "forced_releases", "rejected_acquires",
        "short_circuit_losses", "participated_entries", "total_messages",
        "mailbox_pushes"}) {
    const json_value& value = member(root, key);
    ASSERT_TRUE(value.is_number()) << key;
    EXPECT_GE(value.number(), 0.0) << key;
  }
  EXPECT_EQ(member(root, "acquires").number(), 2.0);
  EXPECT_EQ(member(root, "wins").number(), 1.0);
  EXPECT_EQ(member(root, "releases").number(), 1.0);
  EXPECT_EQ(member(root, "renewals").number(), 1.0);
  EXPECT_EQ(member(root, "stale_fences").number(), 1.0);

  // Rates and latency quantiles.
  for (const std::string key :
       {"messages_per_acquire", "mean_communicate_calls", "acquire_p50_ms",
        "acquire_p99_ms"}) {
    EXPECT_TRUE(member(root, key).is_number()) << key;
  }

  // Per-strategy block: one object per strategy_kind, each with
  // acquires + wins.
  const json_object& strategies = member(root, "strategies").object();
  ASSERT_EQ(strategies.size(),
            static_cast<std::size_t>(election::strategy_kind_count));
  for (int k = 0; k < election::strategy_kind_count; ++k) {
    const std::string name(
        election::to_string(static_cast<election::strategy_kind>(k)));
    const json_object& s = member(strategies, name).object();
    EXPECT_TRUE(member(s, "acquires").is_number()) << name;
    EXPECT_TRUE(member(s, "wins").is_number()) << name;
  }

  // Fast-path block.
  const json_object& fast_path = member(root, "fast_path").object();
  for (const std::string key : {"hits", "conflicts", "fallbacks", "hit_rate"}) {
    EXPECT_TRUE(member(fast_path, key).is_number()) << key;
  }

  // Acquire-latency totals (the Prometheus _count/_sum pair).
  const json_object& latency = member(root, "acquire_latency").object();
  for (const std::string key : {"count", "sum_us"}) {
    EXPECT_TRUE(member(latency, key).is_number()) << key;
  }
  EXPECT_EQ(member(latency, "count").number(), 2.0);
  EXPECT_GE(member(latency, "sum_us").number(), 0.0);

  // Watch-hub block (subscriptions + delivery counters).
  const json_object& watch = member(root, "watch").object();
  for (const std::string key :
       {"active", "published", "delivered", "dropped"}) {
    EXPECT_TRUE(member(watch, key).is_number()) << key;
  }

  // Tracer block (lifetime process-wide counters).
  const json_object& trace = member(root, "trace").object();
  for (const std::string key :
       {"minted", "spans", "slow_captured", "slow_evicted"}) {
    EXPECT_TRUE(member(trace, key).is_number()) << key;
  }

  // Event-journal block.
  const json_object& journal = member(root, "journal").object();
  for (const std::string key :
       {"appended", "evicted", "flushed", "flush_errors"}) {
    EXPECT_TRUE(member(journal, key).is_number()) << key;
  }

  // Per-shard array: one entry per shard, all counters present.
  const json_array& shards = member(root, "shards").array();
  ASSERT_EQ(shards.size(), 3u);
  double keys_total = 0.0;
  for (const auto& shard : shards) {
    const json_object& s = shard->object();
    for (const std::string key : {"acquires", "wins", "releases",
                                  "expirations", "renewals", "stale_fences",
                                  "forced_releases", "keys"}) {
      EXPECT_TRUE(member(s, key).is_number()) << key;
    }
    keys_total += member(s, "keys").number();
  }
  EXPECT_EQ(keys_total, 1.0);

  // The embedded net section parsed as part of the same document.
  const json_object& net = member(root, "net").object();
  EXPECT_EQ(member(net, "frames_in").number(), 7.0);
}

TEST(ServiceReportSchema, ReportWithoutNetSectionOmitsTheKey) {
  svc::service_metrics metrics(1);
  const svc::service_report report = metrics.snapshot();
  const std::string json = report.to_json();
  const auto document = json_parser(json).parse();
  ASSERT_NE(document, nullptr);
  EXPECT_EQ(document->object().count("net"), 0u);
}

}  // namespace
}  // namespace elect
