// Unit tests for the collect-view folding helpers (engine/views.hpp) —
// the code that implements the paper's "∃k: Views[k][j] ..." conditions.
#include <gtest/gtest.h>

#include "engine/views.hpp"

namespace elect::engine {
namespace {

view_entry make_view(process_id replier, var_value value) {
  return view_entry{replier, std::move(value)};
}

var_value int_array_view(int n,
                         std::initializer_list<std::pair<int, std::int64_t>>
                             cells) {
  owned_array<std::int64_t> array(n);
  std::uint32_t seq = 1;
  for (const auto& [owner, value] : cells) {
    array.merge_cell(owner, {seq++, value});
  }
  return array;
}

var_value status_view(int n,
                      std::initializer_list<std::pair<int, pp_status>> cells) {
  owned_array<pp_status> array(n);
  std::uint32_t seq = 1;
  for (const auto& [owner, value] : cells) {
    array.merge_cell(owner, {seq++, value});
  }
  return array;
}

TEST(Views, AnyViewCellFindsMatch) {
  std::vector<view_entry> views;
  views.push_back(make_view(0, status_view(3, {{1, pp_status::commit}})));
  views.push_back(make_view(1, status_view(3, {{1, pp_status::low_pri}})));
  EXPECT_TRUE((any_view_cell<pp_status>(views, 1, [](pp_status s) {
    return s == pp_status::commit;
  })));
  EXPECT_TRUE((any_view_cell<pp_status>(views, 1, [](pp_status s) {
    return s == pp_status::low_pri;
  })));
  EXPECT_FALSE((any_view_cell<pp_status>(views, 1, [](pp_status s) {
    return s == pp_status::high_pri;
  })));
  // Slot 0 is bottom everywhere: predicate never fires.
  EXPECT_FALSE((any_view_cell<pp_status>(views, 0,
                                         [](pp_status) { return true; })));
}

TEST(Views, MonostateViewsAreSkipped) {
  std::vector<view_entry> views;
  views.push_back(make_view(0, var_value{}));  // untouched replier
  views.push_back(make_view(1, status_view(2, {{0, pp_status::high_pri}})));
  EXPECT_TRUE(any_view_nonbottom<pp_status>(views, 0));
  EXPECT_FALSE(any_view_nonbottom<pp_status>(views, 1));
}

TEST(Views, ParticipantsUnionAcrossViews) {
  std::vector<view_entry> views;
  views.push_back(make_view(0, status_view(4, {{0, pp_status::commit}})));
  views.push_back(make_view(1, status_view(4, {{2, pp_status::commit}})));
  views.push_back(make_view(2, var_value{}));
  const auto participants = participants_in_views<pp_status>(views, 4);
  EXPECT_EQ(participants, (std::vector<process_id>{0, 2}));
}

TEST(Views, MaxIntExcludesSelf) {
  std::vector<view_entry> views;
  views.push_back(make_view(0, int_array_view(3, {{0, 9}, {1, 4}})));
  views.push_back(make_view(1, int_array_view(3, {{2, 6}})));
  // Excluding processor 0: max is 6 (from processor 2).
  EXPECT_EQ(max_int_in_views(views, 0, 0), 6);
  // Excluding nobody relevant: 9 dominates.
  EXPECT_EQ(max_int_in_views(views, 2, 0), 9);
  // Bottom default applies when everything is excluded or empty.
  std::vector<view_entry> empty;
  EXPECT_EQ(max_int_in_views(empty, 0, 7), 7);
}

TEST(Views, AnyFlagSet) {
  std::vector<view_entry> views;
  views.push_back(make_view(0, or_flag{false}));
  EXPECT_FALSE(any_flag_set(views));
  views.push_back(make_view(1, or_flag{true}));
  EXPECT_TRUE(any_flag_set(views));
  // monostate views don't count as set.
  std::vector<view_entry> untouched;
  untouched.push_back(make_view(0, var_value{}));
  EXPECT_FALSE(any_flag_set(untouched));
}

TEST(Views, ForEachViewFiltersByType) {
  std::vector<view_entry> views;
  views.push_back(make_view(0, or_flag{true}));
  views.push_back(make_view(1, int_array_view(2, {{0, 5}})));
  int flags_seen = 0, arrays_seen = 0;
  for_each_view<or_flag>(views, [&](const or_flag&) { ++flags_seen; });
  for_each_view<owned_array<std::int64_t>>(
      views, [&](const owned_array<std::int64_t>&) { ++arrays_seen; });
  EXPECT_EQ(flags_seen, 1);
  EXPECT_EQ(arrays_seen, 1);
}

}  // namespace
}  // namespace elect::engine
