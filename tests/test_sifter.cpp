// Naive sifter tests — the paper's motivating counterexample (§1):
// commit-less sifting works against benign schedules but is destroyed by
// a flip-inspecting adaptive adversary, while PoisonPill is not.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "exp/harness.hpp"

namespace elect {
namespace {

using exp::algo;
using exp::run_trial;
using exp::trial_config;
using exp::trial_result;

double mean_survivors(algo kind, int n, const std::string& adversary,
                      std::uint64_t trials = 20) {
  double total = 0;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    trial_config config;
    config.kind = kind;
    config.n = n;
    config.seed = seed;
    config.adversary = adversary;
    const trial_result result = run_trial(config);
    EXPECT_TRUE(result.completed);
    total += result.winners;
  }
  return total / trials;
}

TEST(Sifter, BenignScheduleSiftsToRoughlySqrtN) {
  const int n = 64;
  const double survivors = mean_survivors(algo::naive_sifter, n, "uniform");
  // Under an oblivious-ish schedule, survivors ~ sqrt(n) + prefix ~ small.
  EXPECT_LT(survivors, 6.0 * std::sqrt(static_cast<double>(n)));
  EXPECT_GE(survivors, 1.0);
}

TEST(Sifter, AdaptiveAdversaryForcesAlmostEveryoneToSurvive) {
  // The attack: the adversary sees each flip immediately and freezes
  // 1-flippers' messages; 0-flippers observe no 1 and survive. Expected
  // survivors ≈ n (all 0-flippers survive ≈ n - sqrt(n), plus the
  // 1-flippers always survive).
  const int n = 64;
  const double survivors =
      mean_survivors(algo::naive_sifter, n, "flip-adaptive");
  EXPECT_GT(survivors, 0.85 * n);
}

TEST(Sifter, PoisonPillResistsTheSameAttack) {
  // Same adversary, but with the commit stage in the way: survivors stay
  // in the O(sqrt n) regime. This is the paper's catch-22 at work.
  const int n = 64;
  const double sifter_survivors =
      mean_survivors(algo::naive_sifter, n, "flip-adaptive");
  const double pp_survivors =
      mean_survivors(algo::plain_pp_phase, n, "flip-adaptive");
  EXPECT_LT(pp_survivors, 0.5 * sifter_survivors);
  EXPECT_LT(pp_survivors, 6.0 * std::sqrt(static_cast<double>(n)));
}

TEST(Sifter, AlwaysAtLeastOneSurvivor) {
  // Even the naive sifter keeps the at-least-one-survivor guarantee
  // (a 1-flipper survives by rule; if nobody flips 1, nobody dies).
  for (int n : {1, 2, 5, 16}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      trial_config config;
      config.kind = algo::naive_sifter;
      config.n = n;
      config.seed = seed;
      config.adversary = "uniform";
      const trial_result result = run_trial(config);
      ASSERT_TRUE(result.completed);
      EXPECT_GE(result.winners, 1) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Sifter, BiasOverrideRespected) {
  // bias 1.0: everyone flips 1 and survives.
  trial_config config;
  config.kind = algo::naive_sifter;
  config.n = 12;
  config.seed = 1;
  config.bias = 1.0;
  const trial_result result = run_trial(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.winners, 12);
  EXPECT_EQ(result.one_flippers, 12);
}

}  // namespace
}  // namespace elect
