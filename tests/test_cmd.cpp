// Command-log and snapshot tests: the golden determinism contract
// (record a churn, replay the log into a fresh registry, get
// byte-identical snapshots), wall-clock-independent lease restore,
// restore-time fencing, live-vs-replay parity across the strategy ×
// backend matrix, and adversarial streams/snapshots (truncation, seq
// gaps, corrupt headers) failing with clean errors.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "cmd/command.hpp"
#include "cmd/snapshot.hpp"
#include "net/server.hpp"
#include "svc/registry.hpp"
#include "svc/service.hpp"

namespace elect {
namespace {

using namespace std::chrono_literals;
using clock_type = svc::instance_registry::clock;

/// Acquire `key` for `session` the way the service would: adaptive fast
/// claim when uncontended, protocol arm + claim otherwise. Returns the
/// held epoch, or empty when the attempt lost.
std::optional<std::uint64_t> acquire_via_registry(svc::instance_registry& reg,
                                                  const std::string& key,
                                                  int session,
                                                  clock_type::duration ttl) {
  const svc::adaptive_attempt at = reg.begin_adaptive_attempt(key, session, ttl);
  const std::uint64_t epoch = at.attempt.entry.epoch;
  if (at.fast_attempted &&
      at.fast.outcome == svc::fast_claim_outcome::claimed) {
    return epoch;
  }
  if (reg.arm_protocol(key, epoch) &&
      reg.claim_win(key, epoch, session, ttl).has_value()) {
    return epoch;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------
// Golden determinism: live churn -> log -> replay -> identical bytes.

TEST(CmdGolden, ConcurrentRegistryChurnReplaysByteIdentical) {
  constexpr int shard_count = 4;
  constexpr int threads = 6;
  constexpr int iterations = 40;
  svc::instance_registry reg(shard_count);
  reg.enable_command_log();
  ASSERT_TRUE(reg.command_log_enabled());

  const std::vector<std::string> keys = {"locks/a", "locks/b", "locks/c",
                                         "locks/d", "locks/e"};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < iterations; ++i) {
        const std::string& key =
            keys[static_cast<std::size_t>(t + i) % keys.size()];
        const auto held = acquire_via_registry(reg, key, t, 60s);
        if (!held.has_value()) continue;
        if (i % 3 == 0) (void)reg.renew(key, t, *held, 60s);
        (void)reg.release(key, t, *held);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Exercise the remaining command kinds: an admin force-release, an
  // expiry sweep, and a disconnect reclaim all land in the same stream.
  ASSERT_TRUE(acquire_via_registry(reg, "admin/stuck", 97, 60s).has_value());
  EXPECT_EQ(reg.force_release("admin/stuck"), svc::lease_status::ok);
  ASSERT_TRUE(acquire_via_registry(reg, "sweep/fast", 98, 1ms).has_value());
  EXPECT_EQ(reg.sweep_expired(clock_type::now() + 10s), 1u);
  ASSERT_TRUE(acquire_via_registry(reg, "net/dead", 99, 60s).has_value());
  EXPECT_EQ(reg.reclaim_all(99), 1u);
  // And one lease left held, so the snapshot carries a live deadline.
  ASSERT_TRUE(acquire_via_registry(reg, "held/final", 96, 60s).has_value());

  const std::vector<cmd::command> log = reg.collect_commands();
  const cmd::log_stats stats = reg.log_stats();
  EXPECT_TRUE(stats.recording);
  EXPECT_EQ(stats.recorded, log.size());
  EXPECT_EQ(stats.retained, log.size());
  EXPECT_GT(log.size(), 0u);

  svc::instance_registry fresh(shard_count);
  const auto error = fresh.replay(log);
  ASSERT_FALSE(error.has_value()) << *error;
  EXPECT_EQ(reg.snapshot(), fresh.snapshot());
}

TEST(CmdGolden, ServiceChurnReplaysByteIdentical) {
  constexpr int shard_count = 3;
  svc::service_config config;
  config.nodes = 4;
  config.shards = shard_count;
  config.seed = 21;
  config.record_commands = true;
  svc::service service(std::move(config));

  constexpr int sessions = 4;
  const std::vector<std::string> keys = {"svc/x", "svc/y", "svc/z"};
  std::vector<svc::service::session> handles;
  for (int i = 0; i < sessions; ++i) handles.push_back(service.connect());
  std::vector<std::thread> clients;
  for (int i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      auto& session = handles[static_cast<std::size_t>(i)];
      for (int round = 0; round < 15; ++round) {
        const std::string& key =
            keys[static_cast<std::size_t>(i + round) % keys.size()];
        const svc::acquire_result r = session.try_acquire(key);
        if (r.won) (void)session.release(key, r.epoch);
      }
    });
  }
  for (auto& t : clients) t.join();

  const std::vector<cmd::command> log =
      service.registry().collect_commands();
  EXPECT_GT(log.size(), 0u);
  svc::instance_registry fresh(shard_count);
  const auto error = fresh.replay(log);
  ASSERT_FALSE(error.has_value()) << *error;
  EXPECT_EQ(service.registry().snapshot(), fresh.snapshot());
}

TEST(CmdGolden, TrimmedLogIsCompactedNotLost) {
  svc::instance_registry reg(2);
  reg.enable_command_log();
  ASSERT_TRUE(acquire_via_registry(reg, "trim/a", 1, 0s).has_value());
  const std::vector<std::uint8_t> snap = reg.snapshot(/*trim_log=*/true);
  EXPECT_EQ(reg.log_stats().retained, 0u);
  EXPECT_GT(reg.log_stats().recorded, 0u);

  // Post-trim commands extend a restore()d registry: snapshot + suffix
  // log reconstructs the same state the recorder reaches.
  const auto epoch_b = acquire_via_registry(reg, "trim/b", 2, 0s);
  ASSERT_TRUE(epoch_b.has_value());
  const std::vector<cmd::command> suffix = reg.collect_commands();
  EXPECT_EQ(suffix.size(), 1u);

  svc::instance_registry fresh(2);
  ASSERT_FALSE(fresh.restore(snap, /*fence_restored=*/false).has_value());
  const auto error = fresh.replay(suffix);
  ASSERT_FALSE(error.has_value()) << *error;
  // Semantic equality, not byte equality: restore re-anchors the shard
  // watermarks to the restoring registry's clock (that is the point —
  // remaining TTLs survive), so only pure replay is byte-stable.
  for (const char* key : {"trim/a", "trim/b"}) {
    const auto live = reg.inspect(key);
    const auto twin = fresh.inspect(key);
    ASSERT_TRUE(live.has_value() && twin.has_value()) << key;
    EXPECT_EQ(twin->entry.epoch, live->entry.epoch) << key;
    EXPECT_EQ(twin->leader, live->leader) << key;
  }
}

// ---------------------------------------------------------------------
// Satellite: lease deadlines survive snapshot/restore as remaining TTL
// on the restoring process's clock — not instantly expired, not
// resurrected as immortal.

TEST(CmdLease, RestoredLeaseKeepsItsRemainingTtl) {
  svc::instance_registry reg(1);
  reg.enable_command_log();
  ASSERT_TRUE(acquire_via_registry(reg, "job", 7, 2000ms).has_value());
  std::this_thread::sleep_for(600ms);
  // Snapshots encode lease deadlines relative to the shard's command
  // watermark (the logical timestamp of the last command) — that is
  // what makes live and replayed registries byte-identical. Advance the
  // watermark past the 600 ms of burned lease with one more command, as
  // any live shard sees continuously.
  ASSERT_TRUE(acquire_via_registry(reg, "clock/tick", 8, 0s).has_value());
  const std::vector<std::uint8_t> snap = reg.snapshot();

  svc::instance_registry fresh(1);
  const auto restore_start = clock_type::now();
  ASSERT_FALSE(fresh.restore(snap, /*fence_restored=*/false).has_value());

  // Not instantly expired: the remaining TTL (~1.4 s) is re-anchored to
  // the restoring registry's clock, so an immediate sweep finds nothing.
  EXPECT_EQ(fresh.sweep_expired(clock_type::now()), 0u);
  EXPECT_EQ(fresh.leader_of("job"), 7);
  const auto deadline = fresh.lease_deadline_of("job");
  ASSERT_TRUE(deadline.has_value());
  ASSERT_NE(*deadline, clock_type::time_point::max())
      << "restored lease must not become immortal";
  const auto remaining = *deadline - restore_start;
  EXPECT_GT(remaining, 200ms);
  // Strictly less than the full TTL: the 600 ms that elapsed before the
  // snapshot must stay burned, not be refunded by the restore.
  EXPECT_LT(remaining, 1700ms);

  // Not immortal either: the sweeper ends it once the remainder lapses.
  bool expired = false;
  for (int i = 0; i < 100 && !expired; ++i) {
    expired = fresh.sweep_expired(clock_type::now()) == 1;
    if (!expired) std::this_thread::sleep_for(50ms);
  }
  EXPECT_TRUE(expired) << "restored lease never expired";
}

TEST(CmdLease, FencedRestoreRejectsPreRestartEpochs) {
  svc::instance_registry reg(2);
  const auto old_epoch = acquire_via_registry(reg, "job", 3, 0s);
  ASSERT_TRUE(old_epoch.has_value());
  const std::vector<std::uint8_t> snap = reg.snapshot();

  svc::instance_registry fresh(2);
  ASSERT_FALSE(fresh.restore(snap, /*fence_restored=*/true).has_value());
  // The pre-restart holder presents its restored epoch: fenced.
  EXPECT_EQ(fresh.release("job", 3, *old_epoch),
            svc::lease_status::stale_epoch);
  EXPECT_EQ(fresh.leader_of("job"), -1);
  // And anyone can then win the bumped epoch.
  const auto new_epoch = acquire_via_registry(fresh, "job", 4, 0s);
  ASSERT_TRUE(new_epoch.has_value());
  EXPECT_GT(*new_epoch, *old_epoch);
}

// ---------------------------------------------------------------------
// Parity: the strategy × backend matrix, live vs record-then-replay.

TEST(CmdParity, StrategyBackendMatrixLiveMatchesReplay) {
  constexpr int shard_count = 2;
  const election::strategy_kind strategies[] = {
      election::strategy_kind::full, election::strategy_kind::sifter_pill,
      election::strategy_kind::doorway_only,
      election::strategy_kind::adaptive};
  for (const auto strategy : strategies) {
    for (const bool remote : {false, true}) {
      SCOPED_TRACE(std::string(election::to_string(strategy)) +
                   (remote ? "/remote" : "/local"));
      svc::service_config config;
      config.nodes = 4;
      config.shards = shard_count;
      config.seed = 99;
      config.default_strategy = strategy;
      config.record_commands = true;
      svc::service service(std::move(config));
      std::optional<net::server> server;
      if (remote) {
        server.emplace(service, net::server_config{});
        ASSERT_TRUE(server->listening());
      }

      {
        constexpr int contenders = 3;
        const std::vector<std::string> keys = {"m/p", "m/q"};
        std::vector<std::unique_ptr<api::client>> clients;
        for (int i = 0; i < contenders; ++i) {
          clients.push_back(
              remote ? std::make_unique<api::client>("127.0.0.1",
                                                     server->port())
                     : std::make_unique<api::client>(service));
          ASSERT_TRUE(clients.back()->connected());
        }
        std::vector<std::thread> threads;
        for (int i = 0; i < contenders; ++i) {
          threads.emplace_back([&, i] {
            auto& client = *clients[static_cast<std::size_t>(i)];
            for (int round = 0; round < 8; ++round) {
              const std::string& key =
                  keys[static_cast<std::size_t>(i + round) % keys.size()];
              api::acquired result = client.try_acquire(key);
              // The RAII lease releases (synchronously, over the wire
              // for the remote flavor) at end of iteration.
            }
          });
        }
        for (auto& t : threads) t.join();
        // Clients leave scope holding nothing, so teardown emits no
        // further commands and the collect below races nothing.
      }

      const std::vector<cmd::command> log =
          service.registry().collect_commands();
      EXPECT_GT(log.size(), 0u);
      svc::instance_registry replayed(shard_count);
      const auto error = replayed.replay(log);
      ASSERT_FALSE(error.has_value()) << *error;
      EXPECT_EQ(service.registry().snapshot(), replayed.snapshot());

      for (const svc::key_inspection& live :
           service.registry().list_keys()) {
        const auto twin = replayed.inspect(live.key);
        if (!twin.has_value()) {
          // Touched-but-never-granted keys are implicit state: no
          // command ever named them, so replay correctly knows nothing.
          EXPECT_EQ(live.entry.epoch, 0u) << live.key;
          EXPECT_EQ(live.leader, -1) << live.key;
          continue;
        }
        EXPECT_EQ(twin->entry.epoch, live.entry.epoch) << live.key;
        EXPECT_EQ(twin->leader, live.leader) << live.key;
        if (live.leader != -1) EXPECT_EQ(twin->mode, live.mode) << live.key;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Adversarial: malformed streams and snapshots fail closed.

std::vector<cmd::command> small_log() {
  svc::instance_registry reg(1);
  reg.enable_command_log();
  const auto e0 = acquire_via_registry(reg, "k", 1, 0s);
  EXPECT_TRUE(e0.has_value());
  EXPECT_EQ(reg.release("k", 1, *e0), svc::lease_status::ok);
  const auto e1 = acquire_via_registry(reg, "k", 2, 0s);
  EXPECT_TRUE(e1.has_value());
  return reg.collect_commands();
}

TEST(CmdAdversarial, SequenceGapIsRejected) {
  std::vector<cmd::command> log = small_log();
  ASSERT_EQ(log.size(), 3u);
  log.erase(log.begin() + 1);  // drop the release between the acquires
  svc::instance_registry fresh(1);
  const auto error = fresh.replay(log);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("sequence gap"), std::string::npos) << *error;
}

TEST(CmdAdversarial, EpochMismatchIsRejected) {
  std::vector<cmd::command> log = small_log();
  log[1].epoch += 7;
  svc::instance_registry fresh(1);
  const auto error = fresh.replay(log);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("claims epoch"), std::string::npos) << *error;
}

TEST(CmdAdversarial, WrongHolderIsRejected) {
  std::vector<cmd::command> log = small_log();
  log[1].session = 42;  // the release names a holder who never won
  svc::instance_registry fresh(1);
  const auto error = fresh.replay(log);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("names holder"), std::string::npos) << *error;
}

TEST(CmdAdversarial, ShardMismatchIsRejected) {
  std::vector<cmd::command> log = small_log();
  log[0].shard += 1;  // recorded for a shard this registry doesn't have
  svc::instance_registry fresh(1);
  const auto error = fresh.replay(log);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("maps to shard"), std::string::npos) << *error;
}

class CmdSnapshotAdversarial : public ::testing::Test {
 protected:
  void SetUp() override {
    svc::instance_registry reg(2);
    ASSERT_TRUE(acquire_via_registry(reg, "snap/a", 1, 60s).has_value());
    ASSERT_TRUE(acquire_via_registry(reg, "snap/b", 2, 0s).has_value());
    bytes_ = reg.snapshot();
    ASSERT_GT(bytes_.size(), 10u);
  }

  /// Restore `mutated` into a fresh 2-shard registry; the error string
  /// ("" when it unexpectedly succeeded).
  static std::string restore_error(const std::vector<std::uint8_t>& mutated) {
    svc::instance_registry fresh(2);
    return fresh.restore(mutated, /*fence_restored=*/false).value_or("");
  }

  std::vector<std::uint8_t> bytes_;
};

TEST_F(CmdSnapshotAdversarial, IntactSnapshotRestores) {
  EXPECT_EQ(restore_error(bytes_), "");
}

TEST_F(CmdSnapshotAdversarial, CorruptMagicIsRejected) {
  std::vector<std::uint8_t> bad = bytes_;
  bad[0] ^= 0xFF;
  EXPECT_NE(restore_error(bad).find("magic"), std::string::npos);
}

TEST_F(CmdSnapshotAdversarial, UnknownVersionIsRejected) {
  std::vector<std::uint8_t> bad = bytes_;
  bad[4] ^= 0xFF;  // the u16 version field follows the u32 magic
  EXPECT_NE(restore_error(bad).find("version"), std::string::npos);
}

TEST_F(CmdSnapshotAdversarial, EveryTruncationFailsCleanly) {
  // No truncated prefix may crash, hang, or restore: chop at every
  // length and demand a clean error each time.
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes_.begin(),
                                        bytes_.begin() +
                                            static_cast<std::ptrdiff_t>(len));
    EXPECT_NE(restore_error(cut), "") << "length " << len;
  }
}

TEST_F(CmdSnapshotAdversarial, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> bad = bytes_;
  bad.push_back(0);
  EXPECT_NE(restore_error(bad).find("trailing"), std::string::npos);
}

TEST_F(CmdSnapshotAdversarial, ShardCountMismatchIsRejected) {
  svc::instance_registry three(3);
  const auto error = three.restore(bytes_, /*fence_restored=*/false);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("shards"), std::string::npos) << *error;
}

TEST_F(CmdSnapshotAdversarial, NonEmptyTargetIsRejected) {
  svc::instance_registry busy(2);
  ASSERT_TRUE(acquire_via_registry(busy, "already/here", 5, 0s).has_value());
  const auto error = busy.restore(bytes_, /*fence_restored=*/false);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("empty"), std::string::npos) << *error;
}

}  // namespace
}  // namespace elect
