// Cross-module integration tests: protocols of different kinds sharing
// one system, quorum arithmetic across n parities, and determinism of
// every algorithm in the harness.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "abd/register.hpp"
#include "adversary/basic.hpp"
#include "consensus/quorum_consensus.hpp"
#include "election/leader_elect.hpp"
#include "election/tournament.hpp"
#include "engine/node.hpp"
#include "exp/harness.hpp"
#include "renaming/renaming.hpp"
#include "sim/kernel.hpp"

namespace elect {
namespace {

using election::tas_result;
using engine::erase_result;

constexpr std::int64_t win_value =
    static_cast<std::int64_t>(tas_result::win);

TEST(Integration, MixedProtocolsShareOneSystem) {
  // One system, three concurrent workloads on disjoint variable spaces:
  //   pids 0-3  : leader election (instance 70)
  //   pids 4-7  : renaming over 4 names (space 100)
  //   pids 8-9  : consensus (space 200)
  // Everything must terminate and keep its own guarantees.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    adversary::uniform_random adv;
    sim::kernel k(sim::kernel_config{.n = 10, .seed = seed}, adv);
    for (process_id pid = 0; pid < 4; ++pid) {
      k.attach(pid, erase_result(election::leader_elect(
                        k.node_at(pid),
                        election::leader_elect_params{
                            election::election_id{70}})));
    }
    for (process_id pid = 4; pid < 8; ++pid) {
      renaming::renaming_params params;
      params.space = 100;
      params.name_count = 4;
      k.attach(pid, renaming::get_name(k.node_at(pid), params));
    }
    for (process_id pid = 8; pid < 10; ++pid) {
      k.attach(pid, consensus::decide(k.node_at(pid), 200, pid));
    }
    ASSERT_TRUE(k.run().completed) << "seed " << seed;

    int winners = 0;
    for (process_id pid = 0; pid < 4; ++pid) {
      winners += k.result_of(pid) == win_value ? 1 : 0;
    }
    EXPECT_EQ(winners, 1) << "seed " << seed;

    std::set<std::int64_t> names;
    for (process_id pid = 4; pid < 8; ++pid) {
      const std::int64_t name = k.result_of(pid);
      EXPECT_GE(name, 0);
      EXPECT_LT(name, 4);
      EXPECT_TRUE(names.insert(name).second) << "seed " << seed;
    }

    EXPECT_EQ(k.result_of(8), k.result_of(9)) << "seed " << seed;
    EXPECT_TRUE(k.result_of(8) == 8 || k.result_of(8) == 9);
  }
}

TEST(Integration, ElectionAndAbdRegisterCoexist) {
  // The winner of an election publishes its id through an ABD register;
  // a reader (non-participant in the election) then reads it back.
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 6, .seed = 3}, adv);
  struct flow {
    static engine::task<std::int64_t> contender(engine::node& self) {
      const auto outcome = co_await election::leader_elect(
          self, election::leader_elect_params{election::election_id{5}});
      if (outcome == tas_result::win) {
        co_await abd::write(self, abd::register_var(500), self.id());
      }
      co_return static_cast<std::int64_t>(outcome);
    }
  };
  for (process_id pid = 0; pid < 5; ++pid) {
    k.attach(pid, flow::contender(k.node_at(pid)));
  }
  ASSERT_TRUE(k.run().completed);
  process_id winner = no_process;
  for (process_id pid = 0; pid < 5; ++pid) {
    if (k.result_of(pid) == win_value) winner = pid;
  }
  ASSERT_NE(winner, no_process);
  k.attach(5, abd::read(k.node_at(5), abd::register_var(500), -1));
  ASSERT_TRUE(k.run().completed);
  EXPECT_EQ(k.result_of(5), winner);
}

class QuorumParitySweep : public ::testing::TestWithParam<int> {};

TEST_P(QuorumParitySweep, ElectionWorksAtEveryN) {
  // Quorum arithmetic (floor(n/2)+1) must work for every parity and the
  // n=1/n=2 degenerate cases.
  const int n = GetParam();
  exp::trial_config config;
  config.kind = exp::algo::leader_elect;
  config.n = n;
  config.seed = 42;
  const auto result = exp::run_trial(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.winners, 1);
}

INSTANTIATE_TEST_SUITE_P(AllSmallN, QuorumParitySweep,
                         ::testing::Range(1, 17));

class DeterminismSweep : public ::testing::TestWithParam<exp::algo> {};

TEST_P(DeterminismSweep, EveryAlgorithmIsReplayable) {
  exp::trial_config config;
  config.kind = GetParam();
  config.n = 8;
  config.seed = 77;
  const auto a = exp::run_trial(config);
  const auto b = exp::run_trial(config);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, DeterminismSweep,
    ::testing::Values(exp::algo::leader_elect, exp::algo::recursive_pill,
                      exp::algo::tournament, exp::algo::plain_pp_phase,
                      exp::algo::het_pp_phase, exp::algo::naive_sifter,
                      exp::algo::renaming, exp::algo::baseline_renaming),
    [](const auto& info) {
      std::string name = exp::to_string(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Integration, TournamentAndFigure6AgreeOnSpec) {
  // Run both algorithms on disjoint instances in the same system; each
  // elects exactly one leader independently.
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 8, .seed = 12}, adv);
  for (process_id pid = 0; pid < 4; ++pid) {
    k.attach(pid, erase_result(election::leader_elect(
                      k.node_at(pid), election::leader_elect_params{
                                          election::election_id{30}})));
  }
  for (process_id pid = 4; pid < 8; ++pid) {
    election::tournament_params params;
    params.instance = election::election_id{31};
    k.attach(pid, erase_result(
                      election::tournament_elect(k.node_at(pid), params)));
  }
  ASSERT_TRUE(k.run().completed);
  int figure6_winners = 0, tournament_winners = 0;
  for (process_id pid = 0; pid < 4; ++pid) {
    figure6_winners += k.result_of(pid) == win_value ? 1 : 0;
  }
  for (process_id pid = 4; pid < 8; ++pid) {
    tournament_winners += k.result_of(pid) == win_value ? 1 : 0;
  }
  EXPECT_EQ(figure6_winners, 1);
  EXPECT_EQ(tournament_winners, 1);
}

}  // namespace
}  // namespace elect
