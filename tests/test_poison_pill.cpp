// Plain PoisonPill (Figure 1) property tests.
//
// The central safety property, Claim 3.1 — if all participants return, at
// least one survives — is checked across a parameterized sweep of sizes,
// seeds and adversary strategies: it must hold in EVERY execution, not
// just on average. Claim 3.2's O(sqrt(n)) survivor bound is checked
// statistically under the sequential adversary that makes it tight.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/stats.hpp"
#include "exp/harness.hpp"

namespace elect {
namespace {

using exp::algo;
using exp::run_trial;
using exp::trial_config;
using exp::trial_result;

class PoisonPillSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(PoisonPillSweep, AtLeastOneSurvivorInEveryExecution) {
  const auto [n, adversary] = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trial_config config;
    config.kind = algo::plain_pp_phase;
    config.n = n;
    config.seed = seed;
    config.adversary = adversary;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed) << "n=" << n << " adv=" << adversary
                                  << " seed=" << seed;
    EXPECT_GE(result.winners, 1)
        << "no survivor: n=" << n << " adv=" << adversary << " seed=" << seed;
    EXPECT_LE(result.winners, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PoisonPillSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 33),
                       ::testing::Values("uniform", "round-robin",
                                         "sequential", "flip-adaptive")),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

TEST(PoisonPill, AllSurviveWhenEveryoneFlipsLow) {
  // bias ~ 0: everyone flips 0. In the unlikely event where all flip low
  // priority, they all survive (the Claim 3.1 proof's edge case) —
  // *provided* each sees everyone's low priority. Under the sequential
  // adversary each processor completes its phase in turn, and later
  // processors observe earlier low priorities; the first processor sees
  // nobody else committed yet. All survive.
  trial_config config;
  config.kind = algo::plain_pp_phase;
  config.n = 8;
  config.seed = 3;
  config.adversary = "sequential";
  config.bias = 1e-300;  // effectively zero without tripping the default
  const trial_result result = run_trial(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.winners, 8);
}

TEST(PoisonPill, AllSurviveWhenEveryoneFlipsHigh) {
  trial_config config;
  config.kind = algo::plain_pp_phase;
  config.n = 8;
  config.seed = 3;
  config.adversary = "uniform";
  config.bias = 1.0;  // everyone flips 1: high priority always survives
  const trial_result result = run_trial(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.winners, 8);
}

TEST(PoisonPill, SomeProcessorsActuallyDie) {
  // With the default bias and a benign schedule, a phase at n=32 kills a
  // decent fraction of participants (expected survivors ~ O(sqrt n)).
  int total_survivors = 0;
  const int trials = 10;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    trial_config config;
    config.kind = algo::plain_pp_phase;
    config.n = 32;
    config.seed = seed;
    config.adversary = "uniform";
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    total_survivors += result.winners;
  }
  // Mean survivors must be well below n (32): sqrt(32) ~ 5.7.
  EXPECT_LT(total_survivors, 16 * trials);
  EXPECT_GE(total_survivors, trials);  // and at least one per trial
}

TEST(PoisonPill, SequentialAdversarySurvivorsNearSqrtN) {
  // Claim 3.2 tightness: under the sequential schedule, expected
  // survivors = (processors that flip 1) + (prefix of 0-flips before the
  // first 1) ~ 2*sqrt(n). Check the mean lands in a generous envelope.
  const int n = 64;
  const int trials = 30;
  sample_stats survivors;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    trial_config config;
    config.kind = algo::plain_pp_phase;
    config.n = n;
    config.seed = seed;
    config.adversary = "sequential";
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    survivors.add(result.winners);
  }
  const double sqrt_n = std::sqrt(static_cast<double>(n));  // 8
  EXPECT_GT(survivors.mean(), 0.5 * sqrt_n);
  EXPECT_LT(survivors.mean(), 6.0 * sqrt_n);
}

TEST(PoisonPill, HighPriorityAlwaysSurvives) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    trial_config config;
    config.kind = algo::plain_pp_phase;
    config.n = 16;
    config.seed = seed;
    config.adversary = "uniform";
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    // one_flippers counts coin==1 processors; every one of them survives,
    // so survivors >= one-flippers.
    EXPECT_GE(result.winners, result.one_flippers) << "seed " << seed;
  }
}

TEST(PoisonPill, BiasAblationMonotonicity) {
  // E9 sanity: at bias 1/sqrt(n) survivors are near the optimum; at very
  // high and very low biases (under the adversarial sequential schedule)
  // survivors increase. Uses means over a few seeds.
  const int n = 49;  // sqrt = 7
  const auto mean_survivors = [&](double bias) {
    double total = 0;
    const int trials = 20;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      trial_config config;
      config.kind = algo::plain_pp_phase;
      config.n = n;
      config.seed = seed;
      config.adversary = "sequential";
      config.bias = bias;
      const trial_result result = run_trial(config);
      EXPECT_TRUE(result.completed);
      total += result.winners;
    }
    return total / trials;
  };
  const double at_optimum = mean_survivors(1.0 / 7.0);
  const double at_high = mean_survivors(0.9);
  const double at_low = mean_survivors(0.002);
  EXPECT_LT(at_optimum, at_high);
  EXPECT_LT(at_optimum, at_low);
}

TEST(PoisonPill, AdaptiveFlipAdversaryCannotBeatSqrtEnvelope) {
  // The catch-22: by the time the adversary sees a flip, the commit is
  // replicated. Even the flip-adaptive strategy cannot push survivors
  // beyond the O(sqrt n) regime (contrast with the naive sifter, see
  // test_sifter.cpp).
  const int n = 64;
  sample_stats survivors;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    trial_config config;
    config.kind = algo::plain_pp_phase;
    config.n = n;
    config.seed = seed;
    config.adversary = "flip-adaptive";
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    survivors.add(result.winners);
  }
  EXPECT_LT(survivors.mean(), 6.0 * std::sqrt(static_cast<double>(n)));
}

TEST(PoisonPill, ParticipantsSubsetOnly) {
  // k < n participants: non-participants serve but never contend.
  trial_config config;
  config.kind = algo::plain_pp_phase;
  config.n = 16;
  config.participants = 5;
  config.seed = 2;
  config.adversary = "uniform";
  const trial_result result = run_trial(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GE(result.winners, 1);
  EXPECT_LE(result.winners, 5);
  EXPECT_EQ(result.outcomes.size(), 5u);
}

}  // namespace
}  // namespace elect
