// End-to-end smoke tests: a full leader election on the simulator under
// the uniform-random adversary, for a few sizes and seeds.
#include <gtest/gtest.h>

#include "adversary/basic.hpp"
#include "election/leader_elect.hpp"
#include "engine/node.hpp"
#include "sim/kernel.hpp"

namespace elect {
namespace {

TEST(Smoke, SoloParticipantWins) {
  adversary::uniform_random adv;
  sim::kernel k(sim::kernel_config{.n = 4, .seed = 42}, adv);
  k.attach(0, engine::erase_result(election::leader_elect(k.node_at(0))));
  const auto result = k.run();
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(k.result_of(0),
            static_cast<std::int64_t>(election::tas_result::win));
}

TEST(Smoke, FullParticipationElectsExactlyOneLeader) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    adversary::uniform_random adv;
    sim::kernel k(sim::kernel_config{.n = 8, .seed = seed}, adv);
    for (process_id pid = 0; pid < 8; ++pid) {
      k.attach(pid,
               engine::erase_result(election::leader_elect(k.node_at(pid))));
    }
    const auto result = k.run();
    ASSERT_TRUE(result.completed) << "seed " << seed;
    int winners = 0;
    for (process_id pid = 0; pid < 8; ++pid) {
      if (k.result_of(pid) ==
          static_cast<std::int64_t>(election::tas_result::win)) {
        ++winners;
      }
    }
    EXPECT_EQ(winners, 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace elect
