// Experiment-harness tests: trial plumbing, aggregation, and the table
// renderer benches print through.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/harness.hpp"
#include "exp/table.hpp"

namespace elect {
namespace {

using exp::algo;
using exp::run_trial;
using exp::run_trials;
using exp::trial_config;

TEST(Harness, AlgoNames) {
  EXPECT_EQ(exp::to_string(algo::leader_elect), "leader-elect");
  EXPECT_EQ(exp::to_string(algo::tournament), "tournament");
  EXPECT_EQ(exp::to_string(algo::renaming), "renaming");
}

TEST(Harness, TrialPopulatesMetrics) {
  trial_config config;
  config.kind = algo::leader_elect;
  config.n = 8;
  config.seed = 1;
  const auto result = run_trial(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.total_messages, 0u);
  EXPECT_GT(result.request_messages, 0u);
  EXPECT_GT(result.wire_bytes, result.total_messages);  // >1 byte/message
  EXPECT_GT(result.max_communicate_calls, 0u);
  EXPECT_GT(result.mean_communicate_calls, 0.0);
  EXPECT_EQ(result.outcomes.size(), 8u);
  EXPECT_EQ(result.rounds.size(), 8u);
}

TEST(Harness, AggregateCollectsAllTrials) {
  trial_config config;
  config.kind = algo::het_pp_phase;
  config.n = 8;
  config.seed = 10;
  const auto aggregate = run_trials(config, 5);
  EXPECT_EQ(aggregate.trials, 5);
  EXPECT_EQ(aggregate.incomplete, 0);
  EXPECT_EQ(aggregate.winners.count(), 5u);
  EXPECT_GE(aggregate.winners.min(), 1.0);  // >= 1 survivor each trial
  EXPECT_EQ(aggregate.max_comm_calls.count(), 5u);
}

TEST(Harness, SeedsVaryAcrossAggregatedTrials) {
  trial_config config;
  config.kind = algo::leader_elect;
  config.n = 8;
  config.seed = 100;
  const auto aggregate = run_trials(config, 8);
  // Message counts should not all be identical across seeds.
  EXPECT_GT(aggregate.total_messages.stddev(), 0.0);
}

TEST(Harness, ParticipantsValidated) {
  trial_config config;
  config.n = 4;
  config.participants = 9;  // > n
  EXPECT_DEATH((void)run_trial(config), "");
}

TEST(Table, RendersMarkdown) {
  exp::table t({"n", "time", "messages"});
  t.add_row({"8", "3.00", "512"});
  t.add_row({"16", "3.50", "2048"});
  std::ostringstream out;
  t.print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("| n "), std::string::npos);
  EXPECT_NE(rendered.find("| 16 "), std::string::npos);
  EXPECT_NE(rendered.find("|---"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(exp::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(exp::fmt_int(41.7), "42");
  EXPECT_EQ(exp::fmt_ci(5.0, 0.25), "5.00 ± 0.25");
}

TEST(Table, MismatchedRowAborts) {
  exp::table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "");
}

}  // namespace
}  // namespace elect
