// elect::obs tests: trace minting/scoping/collection, slow-request
// capture naming the stalled phase, trace-id propagation through both
// api::client backends (local and remote), event-journal ordering (both
// standalone and fed by a live service), and the watch hub's overflow
// contract — dropped events are counted, survivors deliver exactly
// once, and a wedged subscriber never blocks the publisher.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "net/server.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"
#include "svc/watch.hpp"

namespace elect {
namespace {

using namespace std::chrono_literals;

/// The tracer's slow-capture state is process-global; every test that
/// arms it must disarm on the way out or it leaks into later tests.
struct slow_capture_guard {
  explicit slow_capture_guard(std::chrono::nanoseconds threshold) {
    obs::set_slow_log(false);
    obs::set_slow_threshold(threshold);
  }
  ~slow_capture_guard() {
    obs::set_slow_threshold(std::chrono::nanoseconds(0));
    obs::set_slow_log(true);
  }
};

bool any_dump_contains(const std::string& label, const std::string& needle) {
  for (const std::string& dump : obs::slow_dumps()) {
    if (dump.find(label) != std::string::npos &&
        dump.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(Trace, MintedIdsAreUniqueAndNonZero) {
  const std::uint64_t a = obs::mint();
  const std::uint64_t b = obs::mint();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(Trace, ScopeSetsRestoresAndNests) {
  const std::uint64_t outer = obs::mint();
  const std::uint64_t inner = obs::mint();
  EXPECT_EQ(obs::current(), 0u);
  {
    const obs::trace_scope a(outer);
    EXPECT_EQ(obs::current(), outer);
    {
      const obs::trace_scope b(inner);
      EXPECT_EQ(obs::current(), inner);
    }
    EXPECT_EQ(obs::current(), outer);
  }
  EXPECT_EQ(obs::current(), 0u);
}

TEST(Trace, CollectReturnsSpansSortedByStart) {
  const std::uint64_t id = obs::mint();
  const std::uint64_t t0 = obs::now_ns();
  // Recorded out of start order on purpose.
  obs::record_for(id, obs::phase::election, t0 + 2000, t0 + 5000);
  obs::record_for(id, obs::phase::queue_wait, t0, t0 + 2000);
  {
    const obs::trace_scope scope(id);
    const obs::scoped_span span(obs::phase::lease_op);
  }
  const std::vector<obs::span> spans = obs::collect(id);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].stage, obs::phase::queue_wait);
  EXPECT_EQ(spans[1].stage, obs::phase::election);
  EXPECT_EQ(spans[2].stage, obs::phase::lease_op);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
  EXPECT_EQ(spans[0].duration_ns(), 2000u);
}

TEST(Trace, ScopedSpanIsInertWithoutACurrentTrace) {
  const obs::trace_counters before = obs::counters();
  {
    const obs::scoped_span span(obs::phase::fast_path);
  }
  EXPECT_EQ(obs::counters().spans, before.spans);
}

TEST(Trace, SlowCaptureNamesTheStalledPhase) {
  const slow_capture_guard guard(std::chrono::nanoseconds(1));
  const std::uint64_t id = obs::mint();
  const std::uint64_t t0 = obs::now_ns();
  // election is the longest non-wrapper phase: 4ms of the 5ms total.
  obs::record_for(id, obs::phase::api_call, t0, t0 + 5'000'000);
  obs::record_for(id, obs::phase::queue_wait, t0, t0 + 1'000'000);
  obs::record_for(id, obs::phase::election, t0 + 1'000'000, t0 + 5'000'000);
  ASSERT_TRUE(obs::maybe_capture_slow(id, std::chrono::nanoseconds(5'000'000),
                                      "stall-test"));
  EXPECT_GE(obs::counters().slow_captured, 1u);
  EXPECT_TRUE(
      any_dump_contains("stall-test", "slowest phase election"));
}

TEST(Trace, BelowThresholdOrUntracedNeverCaptures) {
  const slow_capture_guard guard(std::chrono::milliseconds(100));
  EXPECT_FALSE(obs::maybe_capture_slow(obs::mint(),
                                       std::chrono::milliseconds(1), "fast"));
  EXPECT_FALSE(
      obs::maybe_capture_slow(0, std::chrono::seconds(10), "untraced"));
}

// Trace propagation, local backend: the api_call span minted in
// api::client and the service-layer spans land in one trace, proven
// through the slow dump (which collects by trace id).
TEST(TracePropagation, LocalBackendJoinsServiceSpans) {
  const slow_capture_guard guard(std::chrono::nanoseconds(1));
  svc::service service(svc::service_config{.nodes = 2, .shards = 1});
  api::client client(service);
  auto won = client.try_acquire("obs/local");
  ASSERT_EQ(won.status, api::acquire_status::won);
  EXPECT_EQ(won.lease.release(), svc::lease_status::ok);

  // The acquire dump spans client and service layers.
  EXPECT_TRUE(any_dump_contains("try_acquire obs/local", "api_call"));
  // The release ran under its own minted trace, through the registry.
  EXPECT_TRUE(any_dump_contains("release obs/local", "lease_op"));
}

// Trace propagation, remote backend: the id minted client-side crosses
// the wire (v3 trace_id field) and the server's serve span is recorded
// under that same id — provable here because both ends share one
// process and thus one tracer: collect(client's id) must eventually
// contain the server-side serve span.
TEST(TracePropagation, RemoteBackendCarriesTheIdAcrossTheWire) {
  const slow_capture_guard guard(std::chrono::nanoseconds(1));
  svc::service service(svc::service_config{.nodes = 2, .shards = 1});
  net::server_config config;
  config.port = 0;  // ephemeral
  net::server server(service, config);
  ASSERT_TRUE(server.listening());
  {
    api::client client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());
    auto won = client.try_acquire("obs/remote");
    ASSERT_EQ(won.status, api::acquire_status::won);
    EXPECT_EQ(won.lease.release(), svc::lease_status::ok);
  }

  // The client's round trip is one trace: wire_rtt recorded client-side.
  ASSERT_TRUE(any_dump_contains("try_acquire obs/remote", "wire_rtt"));

  // Recover the trace id from the captured dump ("trace <id> (...)"),
  // then wait for the server's serve span to land under it (the server
  // records it just after the response frame is on the wire).
  std::uint64_t id = 0;
  for (const std::string& dump : obs::slow_dumps()) {
    if (dump.find("(try_acquire obs/remote)") == std::string::npos) continue;
    const std::size_t at = dump.find("trace ");
    if (at != std::string::npos) {
      id = std::strtoull(dump.c_str() + at + 6, nullptr, 10);
    }
  }
  ASSERT_NE(id, 0u);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  bool serve_seen = false;
  while (!serve_seen && std::chrono::steady_clock::now() < deadline) {
    for (const obs::span& sp : obs::collect(id)) {
      if (sp.stage == obs::phase::serve) serve_seen = true;
    }
    if (!serve_seen) std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(serve_seen)
      << "server never recorded a serve span under the client's trace id";
}

TEST(Journal, SeqIsStrictlyIncreasingAndTailIsOldestFirst) {
  obs::journal journal(8);
  journal.append(obs::event_kind::elected, "j/a", 1, 7, "");
  journal.append(obs::event_kind::released, "j/a", 1, 7, "");
  journal.append(obs::event_kind::elected, "j/a", 2, 9, "");
  const auto tail = journal.tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq + 1, tail[1].seq);
  EXPECT_EQ(tail[1].seq, 3u);
  EXPECT_EQ(tail[1].kind, obs::event_kind::elected);
  EXPECT_EQ(tail[1].epoch, 2u);
  EXPECT_EQ(tail[1].holder, 9);
  EXPECT_EQ(journal.report().appended, 3u);
}

TEST(Journal, RingEvictsOldestAndCountsIt) {
  obs::journal journal(2);
  for (int i = 0; i < 5; ++i) {
    journal.append(obs::event_kind::elected, "j/evict", i, -1, "");
  }
  const auto tail = journal.tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);
  EXPECT_EQ(tail[1].seq, 5u);
  EXPECT_EQ(journal.report().evicted, 3u);
}

TEST(Journal, JsonlSinkWritesOneObjectPerLine) {
  const std::string path = testing::TempDir() + "obs_journal_test.jsonl";
  std::remove(path.c_str());
  {
    obs::journal journal(16, path);
    journal.append(obs::event_kind::elected, "j/disk", 1, 3, "");
    journal.append(obs::event_kind::expired, "j/disk", 1, 3, "ttl");
    journal.stop();
    EXPECT_EQ(journal.report().flushed, 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"kind\":\"elected\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"expired\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"cause\":\"ttl\""), std::string::npos);
  std::remove(path.c_str());
}

// The journal fed by a real service: elected -> released in order, a
// fenced renewal recorded as stale_fence, all attributed to the key.
TEST(Journal, ServiceFeedsTypedRecordsInTransitionOrder) {
  svc::service_config config{.nodes = 2, .shards = 1};
  config.journal_events = true;
  config.journal_capacity = 64;
  svc::service service(std::move(config));
  ASSERT_NE(service.journal(), nullptr);

  auto session = service.connect();
  const auto won = session.try_acquire("obs/journal");
  ASSERT_TRUE(won.won);
  EXPECT_EQ(session.renew("obs/journal", won.epoch + 1),
            svc::lease_status::stale_epoch);
  EXPECT_EQ(session.release("obs/journal", won.epoch),
            svc::lease_status::ok);

  const auto tail = service.journal()->tail(16);
  std::vector<obs::event_kind> kinds;
  for (const auto& record : tail) {
    if (record.key == "obs/journal") kinds.push_back(record.kind);
  }
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], obs::event_kind::elected);
  EXPECT_EQ(kinds[1], obs::event_kind::stale_fence);
  EXPECT_EQ(kinds[2], obs::event_kind::released);
  const auto report = service.report();
  EXPECT_GE(report.journal.appended, 3u);
}

// Satellite: the watch hub's overflow contract. A subscriber wedged in
// its callback must not block publishers; events past the queue bound
// are dropped and counted; everything that stayed queued is delivered
// exactly once, in order.
TEST(WatchHub, OverflowDropsAreCountedAndSurvivorsDeliverExactlyOnce) {
  svc::watch_hub hub;

  std::mutex mutex;
  std::condition_variable cv;
  bool release_callback = false;
  std::atomic<bool> wedged{false};
  std::vector<std::uint64_t> seen;

  const std::uint64_t id =
      hub.add("obs/overflow", [&](const svc::watch_event& e) {
        {
          std::unique_lock<std::mutex> lock(mutex);
          seen.push_back(e.epoch);
          if (seen.size() == 1) {
            // Wedge the notifier on the first delivery so everything
            // else piles into the queue.
            wedged.store(true);
            cv.notify_all();
            cv.wait(lock, [&] { return release_callback; });
          }
        }
      });
  ASSERT_NE(id, 0u);

  hub.publish("obs/overflow", 0, svc::transition::elected, 1);
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return wedged.load(); });
  }
  // Notifier is wedged inside epoch 0's callback. Fill the queue past
  // its bound; the overflow must return here (non-blocking publisher)
  // and count drops.
  const std::size_t extra = 100;
  const std::size_t total = svc::watch_hub::max_queued_events + extra;
  for (std::size_t i = 1; i <= total; ++i) {
    hub.publish("obs/overflow", i, svc::transition::elected, 1);
  }
  const svc::watch_report mid = hub.report();
  EXPECT_GE(mid.dropped, extra);
  EXPECT_EQ(mid.published + mid.dropped, total + 1);

  {
    const std::lock_guard<std::mutex> lock(mutex);
    release_callback = true;
  }
  cv.notify_all();

  // Every queued (non-dropped) event drains, exactly once, in order.
  const std::uint64_t expected = mid.published;
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (hub.report().delivered < expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(hub.report().delivered, expected);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(expected));
    for (std::size_t i = 1; i < seen.size(); ++i) {
      EXPECT_LT(seen[i - 1], seen[i]) << "duplicate or reordered delivery";
    }
  }
  hub.remove(id);
  hub.stop();
}

}  // namespace
}  // namespace elect
