// Heterogeneous PoisonPill (Figure 2) property tests: the at-least-one-
// survivor invariant across a full sweep, the Lemma 3.6 / 3.7 survivor
// decomposition envelopes, and the |ℓ|-driven bias behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/stats.hpp"
#include "exp/harness.hpp"

namespace elect {
namespace {

using exp::algo;
using exp::run_trial;
using exp::trial_config;
using exp::trial_result;

class HetPoisonPillSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(HetPoisonPillSweep, AtLeastOneSurvivorInEveryExecution) {
  const auto [n, adversary] = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trial_config config;
    config.kind = algo::het_pp_phase;
    config.n = n;
    config.seed = seed;
    config.adversary = adversary;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed) << "n=" << n << " adv=" << adversary
                                  << " seed=" << seed;
    EXPECT_GE(result.winners, 1)
        << "no survivor: n=" << n << " adv=" << adversary << " seed=" << seed;
    EXPECT_LE(result.winners, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HetPoisonPillSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 33),
                       ::testing::Values("uniform", "round-robin",
                                         "sequential", "flip-adaptive")),
    [](const auto& info) {
      std::string name = std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(info.param)) + "_" + name;
    });

TEST(HetPoisonPill, SoloParticipantAlwaysSurvives) {
  // |ℓ| = 1 forces bias 1: the lone participant flips high and survives.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    trial_config config;
    config.kind = algo::het_pp_phase;
    config.n = 8;
    config.participants = 1;
    config.seed = seed;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.winners, 1);
    EXPECT_EQ(result.one_flippers, 1);  // bias 1 → always flips 1
  }
}

TEST(HetPoisonPill, SequentialAdversaryBeatenToPolylog) {
  // The headline improvement over the plain technique: under the
  // schedule that forces Θ(sqrt n) plain-PoisonPill survivors, the
  // heterogeneous phase keeps expected survivors polylogarithmic
  // (O(log n) zero-flip + O(log² n) one-flip).
  const int n = 64;
  sample_stats survivors;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    trial_config config;
    config.kind = algo::het_pp_phase;
    config.n = n;
    config.seed = seed;
    config.adversary = "sequential";
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    survivors.add(result.winners);
  }
  const double log2n = std::log2(static_cast<double>(n));  // 6
  // Generous envelope: mean well under sqrt-regime, within C*log^2.
  EXPECT_LT(survivors.mean(), 1.5 * log2n * log2n);
}

TEST(HetPoisonPill, ZeroFlipSurvivorsLogEnvelope) {
  // Lemma 3.6: E[zero-flip survivors] = O(log k).
  const int n = 64;
  sample_stats zero_flip;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    trial_config config;
    config.kind = algo::het_pp_phase;
    config.n = n;
    config.seed = seed;
    config.adversary = "sequential";
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    zero_flip.add(result.zero_flip_survivors);
  }
  EXPECT_LT(zero_flip.mean(), 4.0 * std::log2(static_cast<double>(n)));
}

TEST(HetPoisonPill, OneFlippersPolylogEnvelope) {
  // Lemma 3.7: E[#processors that flip 1] = O(log² k).
  const int n = 64;
  sample_stats one_flippers;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    trial_config config;
    config.kind = algo::het_pp_phase;
    config.n = n;
    config.seed = seed;
    config.adversary = "sequential";
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    one_flippers.add(result.one_flippers);
  }
  const double log2n = std::log2(static_cast<double>(n));
  EXPECT_LT(one_flippers.mean(), 2.0 * log2n * log2n);
  // And it isn't degenerate: someone flips 1 reasonably often (the first
  // processor in the sequential order has |ℓ|=1, bias 1).
  EXPECT_GE(one_flippers.mean(), 1.0);
}

TEST(HetPoisonPill, SurvivesCrashInjection) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trial_config config;
    config.kind = algo::het_pp_phase;
    config.n = 9;
    config.seed = seed;
    config.adversary = "uniform";
    config.crashes = max_crash_faults(9);
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed) << "seed " << seed;
    // All *non-crashed* participants returned; survivors among them can
    // legitimately be zero only if crashes removed the would-be
    // survivors, so only sanity-check the range.
    EXPECT_LE(result.winners, 9);
  }
}

TEST(HetPoisonPill, FewerParticipantsFewerSurvivors) {
  // Adaptivity: with k=4 participants out of n=32, survivor counts track
  // k, not n.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    trial_config config;
    config.kind = algo::het_pp_phase;
    config.n = 32;
    config.participants = 4;
    config.seed = seed;
    const trial_result result = run_trial(config);
    ASSERT_TRUE(result.completed);
    EXPECT_GE(result.winners, 1);
    EXPECT_LE(result.winners, 4);
  }
}

}  // namespace
}  // namespace elect
